"""Sharded conservative-parallel event kernel (Chandy–Misra style).

The serial calendar kernel (:mod:`repro.common.simulator`) runs a whole
machine on one queue.  This kernel partitions a machine's simulation
objects across N *shards*, each draining its own calendar queue, and
synchronizes the shards conservatively: a shard only advances while its
inbound *channel clocks* guarantee that no earlier message can still
arrive.  Each channel's clock is driven by the link's minimum latency —
the Chandy–Misra *lookahead*, taken from the machine's topology
(:mod:`repro.common.topology`) — and by null updates (clock-only
promises) exchanged when a shard has nothing to send, which is what
breaks the classic waiting cycle on ring topologies.

Three execution modes (``REPRO_PSIM_MODE`` or ``mode=``):

``sequenced`` (default)
    Per-shard calendars with a global (instant, post-sequence) merge:
    events dispatch in exactly the order the serial kernel would use, so
    results are **byte-identical** to the calendar kernel by
    construction.  Cross-shard posts still flow through channels (with
    lookahead validation and traffic accounting), so the partition is
    exercised while determinism stays absolute.  This is the mode the
    ``REPRO_SIM_KERNEL=parallel`` byte-identity gate runs.

``window``
    True conservative windows, cooperatively scheduled: every round,
    each shard drains all events strictly below its safe horizon
    (min over inbound channel clocks), then messages and null clock
    updates exchange at a barrier.  Deterministic run-to-run, but the
    cross-shard interleaving is *not* the serial one, so shared-state
    order (e.g. global allocation counters) may differ from the serial
    kernel.  Single-threaded — this mode exists to validate the
    synchronization protocol and to measure its overhead honestly.

``thread``
    The same barrier-synchronous algorithm with one worker thread per
    shard draining its window.  Only safe for share-nothing partitions
    (units that never touch another shard's Python objects outside
    channel messages).  Under the CPython GIL this buys no wall-clock
    speedup for pure-Python event processing; it validates the protocol
    under real concurrency and is ready for free-threaded builds.

A machine opts in by describing its partition graph (``topology()``)
and registering object ownership via :meth:`configure_shards`; unrouted
``post()`` calls stay on the posting shard, so intra-shard execution
order is untouched.  Machines whose units couple through zero-lookahead
links (shared buses, inline queue handoffs — the von Neumann pattern
the paper critiques) contract to a single shard and run serially.
"""

import heapq
import itertools
import math
import os
import threading
import time

from .errors import SimulationError
from .simulator import _COMPACT_MIN, Event

__all__ = ["ShardedSimulator", "MODES"]

MODES = ("sequenced", "window", "thread")


class _Local(threading.local):
    """Per-thread execution context: the clock and shard of the event
    being dispatched on this thread (None outside a dispatch)."""

    now = None
    shard = None


class _Shard:
    """One shard: a private calendar queue plus channel buffers."""

    __slots__ = ("index", "buckets", "keys", "now", "live", "ncancelled",
                 "fired", "outbound")

    def __init__(self, index):
        self.index = index
        self.buckets = {}  # float instant -> [(seq, fn, args) | Event]
        self.keys = []  # heap of occupied instants
        self.now = 0.0
        self.live = 0  # queued, not yet fired or cancelled
        self.ncancelled = 0  # cancelled but still queued (lazy)
        self.fired = 0
        self.outbound = []  # (channel, time, fn, args) awaiting exchange

    # Events created by ``schedule`` carry this shard as their ``sim`` so
    # a cancel() lands on the right shard's accounting.
    def _note_cancel(self):
        self.live -= 1
        self.ncancelled += 1

    def next_time(self):
        return self.keys[0] if self.keys else math.inf

    def compact(self):
        """Drop cancelled Event debris (bare tuples cannot cancel)."""
        survivors = {}
        for key, bucket in self.buckets.items():
            bucket[:] = [
                e for e in bucket if type(e) is tuple or not e.cancelled
            ]
            if bucket:
                survivors[key] = bucket
        self.buckets = survivors
        keys = list(survivors)
        heapq.heapify(keys)
        self.keys = keys
        self.ncancelled = 0


class _Channel:
    """A directed shard-to-shard link with a conservative clock."""

    __slots__ = ("src", "dst", "lookahead", "clock", "messages", "nulls")

    def __init__(self, src, dst, lookahead):
        self.src = src
        self.dst = dst
        self.lookahead = lookahead
        # Senders start at t=0, so nothing can arrive before the lookahead.
        self.clock = lookahead
        self.messages = 0
        self.nulls = 0


class ShardedSimulator:
    """Drop-in kernel: the :class:`~repro.common.simulator.Simulator`
    surface (post/schedule/run/now/...) plus shard configuration."""

    def __init__(self, shards=1, mode=None):
        if isinstance(shards, bool) or not isinstance(shards, int):
            raise SimulationError(
                f"shards must be a positive integer, got {shards!r}"
            )
        if shards < 1:
            raise SimulationError(
                f"shards must be a positive integer, got {shards!r}"
            )
        mode = (mode or os.environ.get("REPRO_PSIM_MODE", "")
                or "sequenced").lower()
        if mode not in MODES:
            raise SimulationError(
                f"unknown psim mode {mode!r} (expected one of {list(MODES)})"
            )
        self.shards = shards
        self.mode = mode
        self._shards = [_Shard(i) for i in range(shards)]
        self._channels = {}  # (src, dst) -> _Channel
        self._owner_shard = {}  # id(obj) -> shard index
        self._owner_refs = []  # keep owners alive so ids stay unique
        self._seq = itertools.count()
        self._clock = 0.0
        self._events_fired = 0
        self._rounds = 0
        self._running = False
        self._quiescence_hooks = []
        self._tl = _Local()
        self.bus = None  # optional repro.obs.TraceBus
        self.wall_seconds = 0.0  # host time spent inside run()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure_shards(self, owners, links):
        """Install the partition: object ownership and channel links.

        ``owners`` is an iterable of ``(object, shard_index)`` pairs —
        the objects a machine passes to :meth:`post_to`.  ``links`` is
        either a ``{(src_shard, dst_shard): lookahead}`` mapping (the
        shape :meth:`MachineTopology.shard_links` returns) or an
        iterable of ``(src, dst, lookahead)`` triples.  Every cross-shard
        link must have **strictly positive** lookahead; a zero-lookahead
        link between distinct shards is a causality violation and is
        rejected here rather than corrupting a run later.
        """
        if self._running:
            raise SimulationError("cannot reconfigure shards mid-run")
        for obj, shard in owners:
            self._check_shard(shard)
            self._owner_shard[id(obj)] = shard
            self._owner_refs.append(obj)
        if isinstance(links, dict):
            links = [(s, d, la) for (s, d), la in links.items()]
        for src, dst, lookahead in links:
            self._check_shard(src)
            self._check_shard(dst)
            if src == dst:
                continue
            if lookahead <= 0:
                raise SimulationError(
                    f"channel {src}->{dst} has lookahead {lookahead!r}; "
                    "conservative parallel simulation needs strictly "
                    "positive lookahead on every cross-shard link "
                    "(zero-lookahead couplings must share a shard)"
                )
            self._channels[(src, dst)] = _Channel(src, dst, lookahead)

    def _check_shard(self, shard):
        if not isinstance(shard, int) or isinstance(shard, bool) or \
                not 0 <= shard < self.shards:
            raise SimulationError(
                f"shard index {shard!r} out of range [0, {self.shards})"
            )

    def shard_of(self, owner):
        """The shard ``owner`` was registered to (None when unknown)."""
        return self._owner_shard.get(id(owner))

    def kernel_stats(self):
        """Traffic and synchronization counters for introspection."""
        lookaheads = [c.lookahead for c in self._channels.values()]
        shard_events = [s.fired for s in self._shards]
        populated = [n for n in shard_events if n]
        # Load imbalance across populated shards: max/mean per-shard event
        # count (1.0 = perfectly even).  Deterministic — derived purely
        # from event counts, never wall-clock.
        imbalance = None
        if populated:
            mean = sum(populated) / len(populated)
            if mean > 0:
                imbalance = round(max(populated) / mean, 4)
        return {
            "kernel": "parallel",
            "mode": self.mode,
            "shards": self.shards,
            "populated_shards": sum(
                1 for s in self._shards if s.live or s.fired
            ),
            "channels": len(self._channels),
            "min_lookahead": min(lookaheads) if lookaheads else None,
            "events_fired": self._events_fired,
            "shard_events": shard_events,
            "shard_imbalance": imbalance,
            "channel_messages": sum(
                c.messages for c in self._channels.values()
            ),
            "null_updates": sum(c.nulls for c in self._channels.values()),
            "rounds": self._rounds,
        }

    # ------------------------------------------------------------------
    # Clock and bookkeeping
    # ------------------------------------------------------------------
    @property
    def _now(self):
        now = self._tl.now
        return self._clock if now is None else now

    @property
    def now(self):
        """Current simulated time (the executing shard's clock during a
        dispatch; the global clock otherwise)."""
        return self._now

    @property
    def events_fired(self):
        return self._events_fired

    @property
    def pending(self):
        return sum(shard.live for shard in self._shards)

    def attach_bus(self, bus):
        self.bus = bus
        return bus

    def add_quiescence_hook(self, hook):
        self._quiescence_hooks.append(hook)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _active_shard(self):
        shard = self._tl.shard
        return self._shards[0] if shard is None else self._shards[shard]

    def _insert(self, shard, when, fn, args):
        entry = (next(self._seq), fn, args)
        bucket = shard.buckets.get(when)
        if bucket is None:
            shard.buckets[when] = [entry]
            heapq.heappush(shard.keys, when)
        else:
            bucket.append(entry)
        shard.live += 1

    def post(self, delay, fn, *args):
        """Fire-and-forget schedule on the posting shard (intra-shard
        execution order is exactly the serial kernel's)."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay})"
            )
        self._insert(self._active_shard(), self._now + delay, fn, args)

    def post_at(self, when, fn, *args):
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        self._insert(self._active_shard(), float(when), fn, args)

    def post_to(self, owner, delay, fn, *args):
        """Post routed to ``owner``'s shard.

        Within a shard this is a plain :meth:`post`.  Across shards the
        event becomes a timestamped channel message: the link must exist
        and ``delay`` must be at least its lookahead, otherwise the
        machine's topology declaration was a lie and we fail loudly.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay})"
            )
        target = self._owner_shard.get(id(owner))
        active = self._tl.shard
        if target is None:
            target = active if active is not None else 0
        if active is None or target == active:
            # Pre-run wiring (direct placement on the owner's shard) or
            # an intra-shard post.
            self._insert(self._shards[target], self._now + delay, fn, args)
            return
        channel = self._channels.get((active, target))
        if channel is None:
            raise SimulationError(
                f"no channel from shard {active} to shard {target}; "
                "declare the link in the machine topology"
            )
        if delay < channel.lookahead:
            raise SimulationError(
                f"cross-shard post {active}->{target} with delay {delay} "
                f"below the declared lookahead {channel.lookahead}"
            )
        when = self._now + delay
        if self.mode == "sequenced":
            # Global sequence numbers keep the serial dispatch order;
            # the channel exists for accounting and validation.
            channel.messages += 1
            self._insert(self._shards[target], when, fn, args)
        else:
            self._shards[active].outbound.append((channel, when, fn, args))

    def schedule(self, delay, fn, *args):
        """Cancellable schedule; returns the :class:`Event`."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay})"
            )
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, when, fn, *args):
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        when = float(when)
        shard = self._active_shard()
        event = Event(when, next(self._seq), fn, args, sim=shard)
        bucket = shard.buckets.get(when)
        if bucket is None:
            shard.buckets[when] = [event]
            heapq.heappush(shard.keys, when)
        else:
            bucket.append(event)
        shard.live += 1
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self):
        raise SimulationError(
            "ShardedSimulator has no single-step mode; use run()"
        )

    def run(self, until=None, max_events=None):
        if self._running:
            raise SimulationError("simulator is already running")
        bus = self.bus
        if bus is not None and bus.enabled:
            bus.emit(self._now, "sim", "run_begin", "", pending=self.pending)
        wall_start = time.perf_counter()
        self._running = True
        try:
            if self.mode == "sequenced":
                return self._run_sequenced(until, max_events)
            return self._run_windows(until, max_events,
                                     threaded=(self.mode == "thread"))
        finally:
            self._running = False
            self._tl.now = None
            self._tl.shard = None
            self.wall_seconds += time.perf_counter() - wall_start
            if bus is not None and bus.enabled:
                bus.emit(self._now, "sim", "run_end", "",
                         events=self._events_fired)

    def _quiesce(self, bus):
        """Clear debris, announce quiescence, let hooks refill.

        Returns True when a hook scheduled new work.
        """
        for shard in self._shards:
            if shard.keys:
                shard.keys.clear()
                shard.buckets.clear()
                shard.ncancelled = 0
        if bus is not None and bus.enabled:
            bus.emit(self._clock, "sim", "quiescent", "",
                     events=self._events_fired)
        for hook in self._quiescence_hooks:
            hook()
            if self.pending:
                return True
        return False

    def _budget_error(self, max_events):
        return SimulationError(
            f"event budget exhausted ({max_events} events) at "
            f"t={self._clock}; possible livelock"
        )

    # -------------------------- sequenced -----------------------------
    def _run_sequenced(self, until, max_events):
        """Per-shard calendars, global (instant, sequence) merge.

        Dispatch order is exactly the serial calendar kernel's — within
        an instant events fire in global post order regardless of which
        shard holds them — so every counter, metric, and trace is
        byte-identical to a serial run.
        """
        shards = self._shards
        tl = self._tl
        until_f = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        fired_total = 0
        while True:
            for shard in shards:
                if shard.ncancelled >= _COMPACT_MIN and \
                        shard.ncancelled > shard.live:
                    shard.compact()
            if self.pending == 0:
                if self._quiesce(self.bus):
                    continue
                return self._clock
            t = min(shard.next_time() for shard in shards)
            if t > until_f:
                self._clock = float(until)
                return self._clock
            prev_clock = self._clock
            self._clock = t
            tl.now = t
            cursors = [0] * len(shards)
            nfired = [0] * len(shards)
            fired_instant = 0
            try:
                while True:
                    # The k-way merge: the live entry with the lowest
                    # global sequence across every shard's bucket at t.
                    # Re-scanned per event because a callback may post
                    # at the current instant into any shard.
                    best = None
                    best_seq = None
                    for shard in shards:
                        bucket = shard.buckets.get(t)
                        if not bucket:
                            continue
                        pos = cursors[shard.index]
                        n = len(bucket)
                        while pos < n:
                            entry = bucket[pos]
                            if type(entry) is tuple or not entry.cancelled:
                                break
                            pos += 1
                            shard.ncancelled -= 1
                        cursors[shard.index] = pos
                        if pos >= n:
                            continue
                        entry = bucket[pos]
                        seq = entry[0] if type(entry) is tuple else entry.seq
                        if best_seq is None or seq < best_seq:
                            best_seq = seq
                            best = shard
                    if best is None:
                        break
                    if fired_total + fired_instant >= budget:
                        raise self._budget_error(max_events)
                    entry = best.buckets[t][cursors[best.index]]
                    cursors[best.index] += 1
                    nfired[best.index] += 1
                    fired_instant += 1
                    tl.shard = best.index
                    best.now = t
                    if type(entry) is tuple:
                        entry[1](*entry[2])
                    else:
                        # Mark consumed so a late cancel() is a no-op.
                        entry.cancelled = True
                        entry.fn(*entry.args)
            finally:
                tl.shard = None
                fired_total += fired_instant
                self._events_fired += fired_instant
                for shard in shards:
                    count = nfired[shard.index]
                    if count:
                        shard.live -= count
                        shard.fired += count
                    bucket = shard.buckets.get(t)
                    if bucket is None:
                        continue
                    pos = cursors[shard.index]
                    if pos >= len(bucket):
                        del shard.buckets[t]
                        if shard.keys and shard.keys[0] == t:
                            heapq.heappop(shard.keys)
                    elif pos:
                        # Interrupted mid-instant (budget/exception):
                        # keep the unfired tail queued.
                        del bucket[:pos]
                if fired_instant == 0:
                    # Cancelled-only instant: the clock never advances
                    # (parity with the serial kernels).
                    self._clock = prev_clock
                tl.now = self._clock

    # ----------------------- window / thread ---------------------------
    def _horizon(self, shard_index):
        """Safe simulation bound: min over inbound channel clocks."""
        horizon = math.inf
        for (_, dst), channel in self._channels.items():
            if dst == shard_index and channel.clock < horizon:
                horizon = channel.clock
        return horizon

    def _drain_shard(self, shard, horizon, until_f, allowed):
        """Execute this shard's events with time < horizon (and
        <= until).  Runs on the shard's worker thread in thread mode.
        Returns the number of events fired."""
        tl = self._tl
        tl.shard = shard.index
        if shard.ncancelled >= _COMPACT_MIN and shard.ncancelled > shard.live:
            shard.compact()
        buckets = shard.buckets
        keys = shard.keys
        fired = 0
        try:
            while keys:
                key = keys[0]
                if key >= horizon or key > until_f:
                    break
                heapq.heappop(keys)
                bucket = buckets.pop(key)
                tl.now = key
                shard.now = key
                idx = 0
                while idx < len(bucket):
                    entry = bucket[idx]
                    idx += 1
                    if type(entry) is tuple:
                        if fired >= allowed:
                            bucket[:idx - 1] = []
                            buckets[key] = bucket
                            heapq.heappush(keys, key)
                            raise self._budget_error(None)
                        fired += 1
                        entry[1](*entry[2])
                    elif entry.cancelled:
                        shard.ncancelled -= 1
                    else:
                        if fired >= allowed:
                            bucket[:idx - 1] = []
                            buckets[key] = bucket
                            heapq.heappush(keys, key)
                            raise self._budget_error(None)
                        fired += 1
                        entry.cancelled = True
                        entry.fn(*entry.args)
        finally:
            shard.live -= fired
            shard.fired += fired
            tl.shard = None
            tl.now = None
        return fired

    def _run_windows(self, until, max_events, threaded):
        """Barrier-synchronous conservative windows.

        Round: every shard independently drains to its horizon; at the
        barrier, buffered channel messages insert into their target
        calendars (in deterministic shard/send order) and every channel
        clock advances to its sender's new promise — a *null update*
        when no payload accompanied it.  Positive lookahead on every
        channel guarantees the shard holding the globally earliest event
        always has a horizon beyond it, so rounds always progress.
        """
        shards = self._shards
        until_f = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        fired_total = 0
        while True:
            if self.pending == 0:
                if self._quiesce(self.bus):
                    continue
                return self._clock
            global_next = min(shard.next_time() for shard in shards)
            if global_next > until_f:
                self._clock = float(until)
                return self._clock
            self._rounds += 1
            horizons = [self._horizon(i) for i in range(len(shards))]
            allowed = budget - fired_total
            if allowed <= 0:
                raise self._budget_error(max_events)
            active = [s for s in shards if s.keys]
            errors = []
            fired_round = 0
            if threaded and len(active) > 1:
                results = [0] * len(shards)

                def work(shard, horizon):
                    try:
                        results[shard.index] = self._drain_shard(
                            shard, horizon, until_f, allowed)
                    except BaseException as exc:  # noqa: BLE001 — rethrown
                        errors.append(exc)

                workers = [
                    threading.Thread(
                        target=work, args=(s, horizons[s.index]),
                        name=f"psim-shard{s.index}", daemon=True)
                    for s in active
                ]
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join()
                fired_round = sum(results)
            else:
                for shard in active:
                    try:
                        fired_round += self._drain_shard(
                            shard, horizons[shard.index], until_f,
                            allowed - fired_round)
                    except BaseException as exc:  # noqa: BLE001 — rethrown
                        errors.append(exc)
                        break
            fired_total += fired_round
            self._events_fired += fired_round
            self._clock = max(self._clock,
                              max((s.now for s in active), default=0.0))
            # Exchange: deliveries first (they may wake a shard), then
            # clock promises computed from the post-delivery state.
            messages_round = 0
            for shard in shards:
                for channel, when, fn, args in shard.outbound:
                    channel.messages += 1
                    messages_round += 1
                    self._insert(self._shards[channel.dst], when, fn, args)
                shard.outbound.clear()
            if errors:
                raise errors[0]
            clock_advanced = False
            for channel in self._channels.values():
                source = shards[channel.src]
                promise = min(source.next_time(),
                              horizons[channel.src]) + channel.lookahead
                if promise > channel.clock:
                    channel.nulls += 1
                    channel.clock = promise
                    clock_advanced = True
            if (fired_round == 0 and messages_round == 0
                    and not clock_advanced and self.pending):
                raise SimulationError(
                    "conservative kernel stalled: no events, messages, or "
                    "clock advances in a round (is a lookahead missing?)"
                )

    def _run_quiescence_hooks(self):
        for hook in self._quiescence_hooks:
            hook()
            if self.pending:
                return True
        return False

    def __repr__(self):
        return (
            f"<ShardedSimulator mode={self.mode} shards={self.shards} "
            f"t={self._clock} pending={self.pending} "
            f"fired={self._events_fired}>"
        )
