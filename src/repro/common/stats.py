"""Measurement primitives used by every machine model.

The paper's figure of merit is "ALU utilization / idle time" (§1.2); the
classes here make that and related quantities (queue occupancy over time,
latency distributions, message counts) cheap to record during a simulation
and easy to summarize afterwards.
"""

import math

__all__ = [
    "Counter",
    "Histogram",
    "TimeWeighted",
    "UtilizationTracker",
    "SeriesRecorder",
    "summarize",
]


class Counter:
    """A named bundle of monotonically increasing integer counters."""

    def __init__(self):
        self._counts = {}

    def add(self, name, amount=1):
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name, default=0):
        return self._counts.get(name, default)

    def as_dict(self):
        return dict(self._counts)

    def __getitem__(self, name):
        return self.get(name)

    def __repr__(self):
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Counter({inner})"


class Histogram:
    """An exact histogram over discrete (or binned) observations."""

    def __init__(self):
        self._bins = {}
        self._count = 0
        self._total = 0.0
        self._total_sq = 0.0
        self._min = None
        self._max = None

    def observe(self, value, weight=1):
        self._bins[value] = self._bins.get(value, 0) + weight
        self._count += weight
        self._total += value * weight
        self._total_sq += value * value * weight
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def count(self):
        return self._count

    @property
    def mean(self):
        return self._total / self._count if self._count else 0.0

    @property
    def variance(self):
        if not self._count:
            return 0.0
        mean = self.mean
        return max(0.0, self._total_sq / self._count - mean * mean)

    @property
    def stddev(self):
        return math.sqrt(self.variance)

    @property
    def min(self):
        return self._min

    @property
    def max(self):
        return self._max

    def percentile(self, q):
        """Exact q-th percentile (0 <= q <= 100) of the observed values."""
        if not self._count:
            return None
        target = q / 100.0 * self._count
        running = 0
        for value in sorted(self._bins):
            running += self._bins[value]
            if running >= target:
                return value
        return self._max

    def items(self):
        return sorted(self._bins.items())

    def __repr__(self):
        return (
            f"Histogram(n={self._count}, mean={self.mean:.3f}, "
            f"min={self._min}, max={self._max})"
        )


class TimeWeighted:
    """Tracks a piecewise-constant quantity over simulated time.

    Typical uses: waiting-matching store occupancy, deferred-read-list
    length, network queue depth.  ``update`` must be called with
    non-decreasing timestamps.
    """

    def __init__(self, initial=0.0, start_time=0.0):
        self._value = float(initial)
        self._last_time = float(start_time)
        self._weighted_total = 0.0
        self._elapsed = 0.0
        self._max = float(initial)

    def update(self, time, value):
        """Record that the quantity changed to ``value`` at ``time``."""
        dt = time - self._last_time
        if dt < 0:
            raise ValueError(f"time moved backwards: {self._last_time} -> {time}")
        self._weighted_total += self._value * dt
        self._elapsed += dt
        self._last_time = time
        self._value = float(value)
        if self._value > self._max:
            self._max = self._value

    def adjust(self, time, delta):
        """Convenience: change the quantity by ``delta`` at ``time``."""
        self.update(time, self._value + delta)

    @property
    def current(self):
        return self._value

    @property
    def max(self):
        return self._max

    def mean(self, end_time=None):
        """Time-weighted mean, optionally extending the last value to
        ``end_time``."""
        total = self._weighted_total
        elapsed = self._elapsed
        if end_time is not None and end_time > self._last_time:
            total += self._value * (end_time - self._last_time)
            elapsed += end_time - self._last_time
        return total / elapsed if elapsed > 0 else self._value


class UtilizationTracker:
    """Busy/idle accounting for a hardware unit (ALU, link, port).

    Units report half-open busy intervals; utilization is total busy time
    divided by the observation window.  Overlapping busy intervals (a unit
    with internal parallelism) are supported by tracking a busy *count*.
    """

    def __init__(self, start_time=0.0):
        self._busy_depth = 0
        self._busy_since = None
        self._busy_total = 0.0
        self._start = float(start_time)
        self._operations = 0

    def begin(self, time):
        if self._busy_depth == 0:
            self._busy_since = time
        self._busy_depth += 1
        self._operations += 1

    def end(self, time):
        if self._busy_depth <= 0:
            raise ValueError("UtilizationTracker.end() without matching begin()")
        self._busy_depth -= 1
        if self._busy_depth == 0:
            self._busy_total += time - self._busy_since
            self._busy_since = None

    def busy_time(self, now=None):
        total = self._busy_total
        if self._busy_depth > 0 and now is not None:
            total += now - self._busy_since
        return total

    @property
    def operations(self):
        return self._operations

    def utilization(self, now):
        """Fraction of [start, now] during which the unit was busy."""
        window = now - self._start
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_time(now) / window)


class SeriesRecorder:
    """Records (time, value) samples for post-hoc plotting or assertions."""

    def __init__(self):
        self._times = []
        self._values = []

    def record(self, time, value):
        self._times.append(time)
        self._values.append(value)

    @property
    def times(self):
        return list(self._times)

    @property
    def values(self):
        return list(self._values)

    def __len__(self):
        return len(self._times)

    def __iter__(self):
        return iter(zip(self._times, self._values))


def summarize(values):
    """Return (mean, stddev, min, max) of an iterable of numbers."""
    data = list(values)
    if not data:
        return (0.0, 0.0, None, None)
    n = len(data)
    mean = sum(data) / n
    var = sum((x - mean) ** 2 for x in data) / n
    return (mean, math.sqrt(var), min(data), max(data))
