"""A deterministic discrete-event simulation kernel.

Every timed model in this reproduction — the tagged-token dataflow machine,
the I-structure controllers, the packet networks, and the von Neumann
multiprocessors — runs on this kernel.  The design goals are:

* **Determinism.**  Events that are scheduled for the same instant fire in
  the order they were scheduled (FIFO within an instant; distinct instants
  fire in time order).  Two runs of the same configuration produce
  identical traces.
* **Simplicity.**  Components schedule plain callables.  There is no
  process/coroutine machinery; units that need multi-step behaviour keep
  explicit state and reschedule themselves, which mirrors how the hardware
  units in the paper are described (waiting-matching section, instruction
  fetch, ALU, output section each as a pipeline stage with a service time).
* **Introspection.**  The kernel counts events, exposes the current time,
  and supports quiescence detection so machine models can detect
  termination ("a program terminates when no enabled instructions are
  left", §2.2.2) and deadlock.
* **Speed.**  The models cluster events heavily on a small set of
  instants (nearly every delay is a small whole number of cycles).  The
  default :class:`Simulator` exploits that with a *calendar queue*: a
  dict maps each occupied instant (its exact float time) to a FIFO bucket
  of callbacks, and only the set of occupied instants lives in a heap of
  plain floats, so every heap comparison is a C-level float comparison —
  never a Python ``__lt__`` call.  Fire-and-forget
  :meth:`~CalendarSimulator.post` entries are bare ``(fn, args)`` tuples:
  no :class:`Event` record exists at any point on the dominant path.
  Ordering within a bucket is exactly arrival order, which is what the
  determinism contract requires; ordering across buckets is float order.
  Cancellation is lazy and O(1) (an :class:`Event` flag), and the queue
  compacts cancelled debris away when it would otherwise dominate.
  :class:`LegacySimulator` keeps the original single-``heapq``
  Event-object kernel for A/B comparison
  (``benchmarks/bench_micro_kernel.py --legacy``, or
  ``REPRO_SIM_KERNEL=legacy`` to swap it in globally).

Time is a float measured in *cycles*; each model documents its own cycle
convention.  An "instant" is an exact float value: all arithmetic that
lands on the same cycle produces the identical float, so same-cycle
events share one bucket.
"""

import heapq
import itertools
import math
import os
import time

from .errors import SimulationError

__all__ = ["Event", "Simulator", "CalendarSimulator", "LegacySimulator",
           "KERNELS", "resolve_kernel", "resolve_shards"]

#: Lazily-cancelled events tolerated before the queue is compacted.
_COMPACT_MIN = 512


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule`; user code normally
    only keeps them to call :meth:`cancel`.  The calendar kernel's
    fire-and-forget :meth:`Simulator.post` path does not build Events at
    all — a posted entry is a bare ``(fn, args)`` tuple in its instant's
    bucket.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim")

    def __init__(self, time, seq, fn, args, sim=None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self):
        """Prevent the event from firing.  Safe to call more than once,
        and a no-op on an event that already fired."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            sim._note_cancel()

    def __lt__(self, other):
        # Hand-rolled (time, seq) comparison: avoids building two tuples
        # per heap sift step, which dominated the legacy kernel's profile.
        st = self.time
        ot = other.time
        if st != ot:
            return st < ot
        return self.seq < other.seq

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time} #{self.seq} {name} [{state}]>"


class CalendarSimulator:
    """The event queue and clock shared by all components of one model.

    Calendar scheduler: per-instant FIFO buckets (``dict`` keyed by the
    exact float time) plus a binary heap of the occupied instants.
    Bucket entries are bare ``(fn, args)`` tuples for posted events and
    :class:`Event` records for cancellable ones.  Cancels are lazy and
    O(1); the queue compacts itself when cancelled debris would otherwise
    dominate, so schedule-then-cancel loops stay bounded.
    """

    __slots__ = (
        "_buckets", "_keys", "_seq", "_now", "_events_fired", "_live",
        "_ncancelled", "_needs_compact", "_dispatching",
        "_quiescence_hooks", "bus", "wall_seconds", "_plane",
    )

    def __init__(self):
        self._buckets = {}  # float instant -> [(fn, args) | Event, ...] FIFO
        self._keys = []  # heap of the occupied instants (plain floats)
        self._seq = itertools.count()
        self._now = 0.0
        self._events_fired = 0
        self._live = 0  # scheduled, not yet fired or cancelled
        self._ncancelled = 0  # cancelled but still queued (lazy)
        self._needs_compact = False
        self._dispatching = False  # a bucket is being drained in place
        self._quiescence_hooks = []
        self.bus = None  # optional repro.obs.TraceBus
        self.wall_seconds = 0.0  # host time spent inside run()
        self._plane = None  # optional repro.common.batch.BatchPlane

    # ------------------------------------------------------------------
    # Clock and bookkeeping
    # ------------------------------------------------------------------
    @property
    def now(self):
        """Current simulated time in cycles."""
        return self._now

    @property
    def events_fired(self):
        """Total number of events executed so far."""
        return self._events_fired

    @property
    def pending(self):
        """Number of not-yet-cancelled events still in the queue.  O(1)."""
        return self._live

    def _note_cancel(self):
        self._live -= 1
        n = self._ncancelled + 1
        self._ncancelled = n
        if n >= _COMPACT_MIN and n > self._live:
            if self._dispatching:
                self._needs_compact = True
            else:
                self._compact()

    def _compact(self):
        """Drop cancelled debris.  Mutates the containers in place so the
        hot loop's local aliases stay valid.  Bare-tuple entries are posts
        and can never be cancelled; only Event records are filtered."""
        survivors = {}
        for key, bucket in self._buckets.items():
            bucket[:] = [
                e for e in bucket if type(e) is tuple or not e.cancelled
            ]
            if bucket:
                survivors[key] = bucket
        self._buckets.clear()
        self._buckets.update(survivors)
        keys = list(survivors)
        heapq.heapify(keys)
        self._keys[:] = keys
        self._ncancelled = 0
        self._needs_compact = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay, fn, *args):
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now.

        Returns the :class:`Event`, which the caller may :meth:`~Event.cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time, fn, *args):
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        time = float(time)
        event = Event(time, next(self._seq), fn, args, sim=self)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heapq.heappush(self._keys, time)
        else:
            bucket.append(event)
        self._live += 1
        return event

    def post(self, delay, fn, *args):
        """Fire-and-forget :meth:`schedule`: no Event is returned and no
        Event record is ever built — the queue entry is a bare
        ``(fn, args)`` tuple in its instant's bucket.  This is the fast
        path every hot component uses."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [(fn, args)]
            heapq.heappush(self._keys, time)
        else:
            bucket.append((fn, args))
        self._live += 1

    def post_at(self, time, fn, *args):
        """Absolute-time :meth:`post`."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        self.post(time - self._now, fn, *args)

    def post_to(self, owner, delay, fn, *args):
        """Owner-routed :meth:`post`.  The serial kernel has one queue, so
        the owner is irrelevant here; the sharded kernel
        (:mod:`repro.common.psim`) routes the event to ``owner``'s shard.
        Components use this for cross-unit communication so the same code
        runs on every kernel."""
        self.post(delay, fn, *args)

    def attach_bus(self, bus):
        """Publish kernel lifecycle events (run begin/end, quiescence) to
        ``bus``.  The hot event loop itself is untouched — observability
        of individual events belongs to the components that schedule
        them, which know what the events mean."""
        self.bus = bus
        return bus

    def add_quiescence_hook(self, hook):
        """Register ``hook()`` to run when the event queue drains.

        A hook may schedule new events (e.g. a machine model that injects
        the next phase of a workload); the run then continues.  Hooks fire
        in registration order.
        """
        self._quiescence_hooks.append(hook)

    def attach_batch_plane(self, plane):
        """Attach a :class:`repro.common.batch.BatchPlane`: the drain will
        scan each bucket segment for runs of registered entries and apply
        them through the plane's SoA kernels (``exec_mode="batch"``)."""
        self._plane = plane
        return plane

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self):
        """Execute the single next event.  Returns False if none remain."""
        keys = self._keys
        buckets = self._buckets
        while keys:
            key = keys[0]
            bucket = buckets[key]
            idx = 0
            n = len(bucket)
            while idx < n:
                entry = bucket[idx]
                if type(entry) is tuple or not entry.cancelled:
                    break
                idx += 1
                self._ncancelled -= 1
            if idx == n:
                # Nothing but cancelled debris at this instant.
                del buckets[key]
                heapq.heappop(keys)
                continue
            entry = bucket[idx]
            del bucket[: idx + 1]
            if not bucket:
                del buckets[key]
                heapq.heappop(keys)
            self._now = key
            self._events_fired += 1
            self._live -= 1
            if type(entry) is tuple:
                fn, args = entry
            else:
                fn = entry.fn
                args = entry.args
                # Mark consumed so a late cancel() is a no-op.
                entry.cancelled = True
            fn(*args)
            return True
        return False

    def run(self, until=None, max_events=None):
        """Run until the queue drains, ``until`` cycles pass, or the event
        budget ``max_events`` is exhausted.

        Returns the simulated time at which the run stopped.  Quiescence
        hooks are given a chance to refill the queue whenever it drains.
        Wall-clock time spent here accumulates in :attr:`wall_seconds`
        (kept out of the trace stream — traces stay deterministic).
        """
        bus = self.bus
        if bus is not None and bus.enabled:
            bus.emit(self._now, "sim", "run_begin", "", pending=self._live)
        wall_start = time.perf_counter()
        try:
            return self._run(until, max_events)
        finally:
            self.wall_seconds += time.perf_counter() - wall_start
            if bus is not None and bus.enabled:
                bus.emit(self._now, "sim", "run_end", "",
                         events=self._events_fired)

    def _run(self, until, max_events):
        # The hot loop.  Locals alias both containers (compaction mutates
        # them in place, so the aliases stay valid); each instant
        # dispatches as one batch with the clock set once and the
        # counters flushed once, and the bus check happens only at
        # quiescence.
        bus = self.bus
        buckets = self._buckets
        keys = self._keys
        heappop = heapq.heappop
        heappush = heapq.heappush
        plane = self._plane
        until_f = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        fired = 0
        while True:
            if self._needs_compact:
                self._compact()
            if self._live == 0:
                # Nothing but cancelled debris (or nothing at all) left.
                if keys:
                    keys.clear()
                    buckets.clear()
                    self._ncancelled = 0
                if bus is not None and bus.enabled:
                    bus.emit(self._now, "sim", "quiescent", "",
                             events=self._events_fired)
                if self._run_quiescence_hooks():
                    continue
                return self._now
            key = keys[0]
            if key > until_f:
                self._now = float(until)
                return self._now
            heappop(keys)
            bucket = buckets[key]
            prev_now = self._now
            self._now = key
            idx = 0
            nfired = 0
            ncancelled = 0
            allowed = budget - fired
            self._dispatching = True
            try:
                # The outer loop re-reads ``len(bucket)`` only at batch
                # boundaries: callbacks may post at the current instant
                # and extend the list mid-drain.  With a batch plane
                # attached, each segment is first scanned for contiguous
                # runs of batchable entries; runs fire through their
                # kind's SoA kernel, everything between them takes the
                # scalar path below unchanged.
                while True:
                    n = len(bucket)
                    if idx >= n:
                        break
                    if plane is not None and n - idx > 1:
                        runs = plane.scan(bucket, idx, n, allowed - nfired)
                    else:
                        runs = ()
                    ri = 0
                    nruns = len(runs)
                    while True:
                        if ri < nruns:
                            run = runs[ri]
                            limit = run[0]
                        else:
                            run = None
                            limit = n
                        while idx < limit:
                            entry = bucket[idx]
                            idx += 1
                            if type(entry) is tuple:
                                if nfired >= allowed:
                                    idx -= 1
                                    raise SimulationError(
                                        f"event budget exhausted ({max_events} "
                                        f"events) at t={self._now}; possible "
                                        "livelock"
                                    )
                                nfired += 1
                                fn, args = entry
                                fn(*args)
                            elif entry.cancelled:
                                ncancelled += 1
                            else:
                                if nfired >= allowed:
                                    idx -= 1
                                    raise SimulationError(
                                        f"event budget exhausted ({max_events} "
                                        f"events) at t={self._now}; possible "
                                        "livelock"
                                    )
                                nfired += 1
                                entry.cancelled = True
                                fn = entry.fn
                                args = entry.args
                                fn(*args)
                        if run is None:
                            break
                        # The scan bounded every run by the remaining
                        # budget, so the whole run fires unconditionally.
                        # Count it before applying: if a handler raises,
                        # the run is charged as fired and the exception
                        # propagates (the same entry raises the same
                        # error the event path would have).
                        end = run[1]
                        width = end - idx
                        nfired += width
                        idx = end
                        plane.note_run(width)
                        run[2].apply_run(bucket, end - width, end)
                        ri += 1
            finally:
                self._dispatching = False
                fired += nfired
                self._events_fired += nfired
                self._live -= nfired
                self._ncancelled -= ncancelled
                if nfired == 0:
                    # Cancelled-only instant: the clock never advances
                    # (parity with the legacy kernel).
                    self._now = prev_now
                if idx < len(bucket):
                    # Interrupted mid-instant (budget/exception): keep
                    # the unfired tail and requeue the instant.
                    del bucket[:idx]
                    heappush(keys, key)
                else:
                    del buckets[key]

    def _run_quiescence_hooks(self):
        """Run hooks until one of them schedules work.  True if any did."""
        for hook in self._quiescence_hooks:
            hook()
            if self._live:
                return True
        return False

    def kernel_stats(self):
        """Deterministic kernel-level counters for this run.

        The shape mirrors :meth:`repro.common.psim.ShardedSimulator.
        kernel_stats` where the concepts overlap (``kernel``,
        ``events_fired``) so callers can surface either kernel's stats
        without case analysis.  Wall-clock time is deliberately absent —
        these values feed byte-stable result payloads."""
        stats = {
            "kernel": "calendar",
            "events_fired": self._events_fired,
            "pending": self._live,
            "cancelled_queued": self._ncancelled,
        }
        plane = self._plane
        if plane is None:
            stats["exec_mode"] = "event"
        else:
            stats.update(plane.stats())
        return stats

    def __repr__(self):
        return (
            f"<Simulator t={self._now} pending={self.pending} "
            f"fired={self._events_fired}>"
        )


class LegacySimulator:
    """The original single-``heapq`` kernel, kept verbatim for A/B
    benchmarking (``bench_micro_kernel.py --legacy``) and as a refuge if a
    model ever needs the simpler scheduler (``REPRO_SIM_KERNEL=legacy``)."""

    def __init__(self):
        self._queue = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_fired = 0
        self._quiescence_hooks = []
        self.bus = None  # optional repro.obs.TraceBus
        self.wall_seconds = 0.0  # host time spent inside run()

    # ------------------------------------------------------------------
    @property
    def now(self):
        """Current simulated time in cycles."""
        return self._now

    @property
    def events_fired(self):
        """Total number of events executed so far."""
        return self._events_fired

    @property
    def pending(self):
        """Number of not-yet-cancelled events still in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)

    # ------------------------------------------------------------------
    def schedule(self, delay, fn, *args):
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time, fn, *args):
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(float(time), next(self._seq), fn, args)
        heapq.heappush(self._queue, event)
        return event

    def post(self, delay, fn, *args):
        """API-compatible alias for :meth:`schedule` (no tuple path here)."""
        self.schedule(delay, fn, *args)

    def post_at(self, time, fn, *args):
        """API-compatible alias for :meth:`schedule_at`."""
        self.schedule_at(time, fn, *args)

    def post_to(self, owner, delay, fn, *args):
        """Owner-routed :meth:`post` (owner ignored on a serial kernel)."""
        self.schedule(delay, fn, *args)

    def attach_bus(self, bus):
        """Publish kernel lifecycle events to ``bus``."""
        self.bus = bus
        return bus

    def add_quiescence_hook(self, hook):
        """Register ``hook()`` to run when the event queue drains."""
        self._quiescence_hooks.append(hook)

    # ------------------------------------------------------------------
    def step(self):
        """Execute the single next event.  Returns False if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_fired += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until=None, max_events=None):
        """Run until the queue drains, ``until`` cycles pass, or the event
        budget ``max_events`` is exhausted."""
        bus = self.bus
        if bus is not None and bus.enabled:
            bus.emit(self._now, "sim", "run_begin", "", pending=self.pending)
        wall_start = time.perf_counter()
        try:
            return self._run(until, max_events)
        finally:
            self.wall_seconds += time.perf_counter() - wall_start
            if bus is not None and bus.enabled:
                bus.emit(self._now, "sim", "run_end", "",
                         events=self._events_fired)

    def _run(self, until, max_events):
        bus = self.bus
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"event budget exhausted ({max_events} events) at t={self._now}; "
                    "possible livelock"
                )
            next_event = self._peek()
            if next_event is None:
                if bus is not None and bus.enabled:
                    bus.emit(self._now, "sim", "quiescent", "",
                             events=self._events_fired)
                if self._run_quiescence_hooks():
                    continue
                return self._now
            if until is not None and next_event.time > until:
                self._now = float(until)
                return self._now
            self.step()
            fired += 1

    def _peek(self):
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            return event
        return None

    def _run_quiescence_hooks(self):
        """Run hooks until one of them schedules work.  True if any did."""
        for hook in self._quiescence_hooks:
            hook()
            if self._peek() is not None:
                return True
        return False

    def kernel_stats(self):
        """Deterministic kernel-level counters (see
        :meth:`CalendarSimulator.kernel_stats`)."""
        return {
            "kernel": "legacy",
            "events_fired": self._events_fired,
            "pending": self.pending,
            "cancelled_queued": 0,
            "exec_mode": "event",  # batch mode is calendar-kernel only
        }

    def __repr__(self):
        return (
            f"<Simulator t={self._now} pending={self.pending} "
            f"fired={self._events_fired}>"
        )


#: Kernel name -> class; the ``Simulator`` factory and the ``kernel=``
#: kwarg both resolve through this table.  The ``parallel`` entry is a
#: lazy placeholder — :mod:`repro.common.psim` imports this module, so
#: the class is loaded on first resolution rather than at import time.
KERNELS = {
    "calendar": CalendarSimulator,
    "legacy": LegacySimulator,
    "parallel": None,
}


def resolve_shards(shards=None):
    """Validated shard count from ``shards`` or ``$REPRO_SIM_SHARDS``.

    Returns 1 when nothing was requested.  Rejects non-integers (bools
    included) and counts below 1 with :class:`SimulationError` instead of
    letting a bad value crash deep inside a run.
    """
    if shards is None:
        raw = os.environ.get("REPRO_SIM_SHARDS", "")
        if not raw:
            return 1
        try:
            shards = int(raw)
        except ValueError:
            raise SimulationError(
                f"REPRO_SIM_SHARDS={raw!r} is not an integer"
            ) from None
    if isinstance(shards, bool) or not isinstance(shards, int):
        raise SimulationError(
            f"shards must be a positive integer, got {shards!r}"
        )
    if shards < 1:
        raise SimulationError(
            f"shards must be a positive integer, got {shards!r}"
        )
    return shards


def resolve_kernel(kernel=None, shards=None):
    """The kernel class for ``kernel`` (or ``$REPRO_SIM_KERNEL``).

    Resolution happens per call — *not* at import time — so setting the
    environment variable after ``import repro`` works, as does passing
    ``kernel="legacy"`` explicitly.  Asking for more than one shard
    implies the parallel kernel when no kernel was named; naming a
    *serial* kernel while asking for shards is a contradiction and
    raises rather than silently running on one queue.
    """
    name = kernel or os.environ.get("REPRO_SIM_KERNEL", "") or ""
    shards = resolve_shards(shards)
    if not name:
        name = "parallel" if shards > 1 else "calendar"
    name = name.lower()
    if name not in KERNELS:
        raise SimulationError(
            f"unknown simulator kernel {name!r} "
            f"(expected one of {sorted(KERNELS)})"
        )
    if shards > 1 and name != "parallel":
        raise SimulationError(
            f"kernel {name!r} is serial and cannot honour shards={shards}; "
            "use kernel='parallel' (or unset REPRO_SIM_KERNEL)"
        )
    cls = KERNELS[name]
    if cls is None:  # lazy-load the parallel kernel
        from .psim import ShardedSimulator
        KERNELS["parallel"] = cls = ShardedSimulator
    return cls


def Simulator(kernel=None, shards=None, **kwargs):  # noqa: N802 — class-like factory
    """Construct a simulator on the selected kernel.

    Historically ``Simulator`` was a module-level alias bound at import
    time, which silently ignored ``REPRO_SIM_KERNEL`` set afterwards.
    It is now a factory resolving the choice at construction; every
    call site (``Simulator()``) is source-compatible, and
    ``isinstance`` checks should name a concrete kernel class.

    ``shards`` (or ``$REPRO_SIM_SHARDS``) above 1 selects the sharded
    parallel kernel; serial kernels reject an explicit shard count.
    """
    cls = resolve_kernel(kernel, shards)
    if getattr(cls, "__name__", "") == "ShardedSimulator":
        kwargs.setdefault("shards", resolve_shards(shards))
    return cls(**kwargs)
