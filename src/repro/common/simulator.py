"""A deterministic discrete-event simulation kernel.

Every timed model in this reproduction — the tagged-token dataflow machine,
the I-structure controllers, the packet networks, and the von Neumann
multiprocessors — runs on this kernel.  The design goals are:

* **Determinism.**  Events that are scheduled for the same instant fire in
  the order they were scheduled (FIFO by a monotonically increasing sequence
  number).  Two runs of the same configuration produce identical traces.
* **Simplicity.**  Components schedule plain callables.  There is no
  process/coroutine machinery; units that need multi-step behaviour keep
  explicit state and reschedule themselves, which mirrors how the hardware
  units in the paper are described (waiting-matching section, instruction
  fetch, ALU, output section each as a pipeline stage with a service time).
* **Introspection.**  The kernel counts events, exposes the current time,
  and supports quiescence detection so machine models can detect
  termination ("a program terminates when no enabled instructions are
  left", §2.2.2) and deadlock.

Time is a float measured in *cycles*; each model documents its own cycle
convention.
"""

import heapq
import itertools
import time

from .errors import SimulationError

__all__ = ["Event", "Simulator"]


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule`; user code normally
    only keeps them to call :meth:`cancel`.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time, seq, fn, args):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time} #{self.seq} {name} [{state}]>"


class Simulator:
    """The event queue and clock shared by all components of one model."""

    def __init__(self):
        self._queue = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_fired = 0
        self._quiescence_hooks = []
        self.bus = None  # optional repro.obs.TraceBus
        self.wall_seconds = 0.0  # host time spent inside run()

    # ------------------------------------------------------------------
    # Clock and bookkeeping
    # ------------------------------------------------------------------
    @property
    def now(self):
        """Current simulated time in cycles."""
        return self._now

    @property
    def events_fired(self):
        """Total number of events executed so far."""
        return self._events_fired

    @property
    def pending(self):
        """Number of not-yet-cancelled events still in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay, fn, *args):
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time, fn, *args):
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(float(time), next(self._seq), fn, args)
        heapq.heappush(self._queue, event)
        return event

    def attach_bus(self, bus):
        """Publish kernel lifecycle events (run begin/end, quiescence) to
        ``bus``.  The hot event loop itself is untouched — observability
        of individual events belongs to the components that schedule
        them, which know what the events mean."""
        self.bus = bus
        return bus

    def add_quiescence_hook(self, hook):
        """Register ``hook()`` to run when the event queue drains.

        A hook may schedule new events (e.g. a machine model that injects
        the next phase of a workload); the run then continues.  Hooks fire
        in registration order.
        """
        self._quiescence_hooks.append(hook)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self):
        """Execute the single next event.  Returns False if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_fired += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until=None, max_events=None):
        """Run until the queue drains, ``until`` cycles pass, or the event
        budget ``max_events`` is exhausted.

        Returns the simulated time at which the run stopped.  Quiescence
        hooks are given a chance to refill the queue whenever it drains.
        Wall-clock time spent here accumulates in :attr:`wall_seconds`
        (kept out of the trace stream — traces stay deterministic).
        """
        bus = self.bus
        if bus is not None and bus.enabled:
            # ``pending`` walks the whole queue — only pay for it when a
            # sink is actually listening.
            bus.emit(self._now, "sim", "run_begin", "", pending=self.pending)
        wall_start = time.perf_counter()
        try:
            return self._run(until, max_events)
        finally:
            self.wall_seconds += time.perf_counter() - wall_start
            if bus is not None and bus.enabled:
                bus.emit(self._now, "sim", "run_end", "",
                         events=self._events_fired)

    def _run(self, until, max_events):
        bus = self.bus
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"event budget exhausted ({max_events} events) at t={self._now}; "
                    "possible livelock"
                )
            next_event = self._peek()
            if next_event is None:
                if bus is not None and bus.enabled:
                    bus.emit(self._now, "sim", "quiescent", "",
                             events=self._events_fired)
                if self._run_quiescence_hooks():
                    continue
                return self._now
            if until is not None and next_event.time > until:
                self._now = float(until)
                return self._now
            self.step()
            fired += 1

    def _peek(self):
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            return event
        return None

    def _run_quiescence_hooks(self):
        """Run hooks until one of them schedules work.  True if any did."""
        for hook in self._quiescence_hooks:
            hook()
            if self._peek() is not None:
                return True
        return False

    def __repr__(self):
        return (
            f"<Simulator t={self._now} pending={self.pending} "
            f"fired={self._events_fired}>"
        )
