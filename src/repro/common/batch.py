"""Batch execution mode: structure-of-arrays kernels over the calendar drain.

The calendar kernel (PR 4) made event *dispatch* cheap; the remaining
per-event cost is the Python inside the machine cores — one token matched,
one memory request served, one instruction executed per callback.  The
paper's own throughput argument (§1.2) is about draining large pools of
homogeneous ready work, and that is exactly the shape the calendar queue
exposes: every bucket holds one simulated instant's arrivals, already in
deterministic FIFO order.

``exec_mode="batch"`` (or ``REPRO_EXEC_MODE=batch``) turns that bucket
into a batch.  Before the drain fires a bucket segment, the attached
:class:`BatchPlane` *scans* it for contiguous runs of entries whose
callback belongs to a registered :class:`BatchKind` — all waiting-matching
completions, all memory-bank services, all ALU completions at this
instant.  Each run is then applied by the kind's ``apply_run``: one Python
call that gathers the run into structure-of-arrays form (numpy int arrays
of tags/ports/addresses/opcodes), does the homogeneous compute vectorized,
and replays the per-entry side effects **in exact bucket order**.

Byte-identity is by construction, not by testing:

* the bucket already *is* the arrival-ordered event log, and ``apply_run``
  replays each entry's handler body (inlined, with the vectorized result
  substituted for the scalar compute) at its exact position — so every
  downstream ``submit``/``post`` happens in the same order, at the same
  simulated time, with the same values as the event path;
* a kind's vectorized pre-pass may only read state that is written
  exclusively by entries of that same kind, and one unit (one FIFO
  server, one bank, one controller) completes at most once per bucket
  segment — so the pre-pass can never observe state mid-mutation;
* runs never contain cancellable :class:`~repro.common.simulator.Event`
  records (every hot path posts bare tuples, which cannot be cancelled),
  and the scan stops adding entries once the run would overrun the
  remaining event budget — so budget exhaustion still leaves a resumable
  unfired tail, exactly like the event path.

If a batched handler raises, the drain counts the whole run as fired and
lets the exception propagate (the machine is dead either way); the raise
itself happens at the same entry, with the same message, as event mode.

Fault injection and tracing need per-event interposition, so machines
deregister their kinds (the plane stays attached and reports zero batched
ops) when a fault plan or trace bus is active; the run simply takes the
reference event path under ``exec_mode="batch"``.
"""

import os

from .errors import SimulationError

try:  # numpy is the whole point, but the plane stays inert without it
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None

__all__ = ["EXEC_MODES", "resolve_exec_mode", "BatchKind", "FusedKind",
           "BatchPlane", "np"]

#: Known execution modes.  ``event`` is the per-callback reference path;
#: ``batch`` drains homogeneous bucket runs through SoA kernels.
EXEC_MODES = ("event", "batch")


def resolve_exec_mode(exec_mode=None):
    """Validated execution mode from ``exec_mode`` or ``$REPRO_EXEC_MODE``.

    Resolution happens per call — *not* at import time — so setting the
    environment variable after ``import repro`` works (the
    :func:`~repro.common.simulator.resolve_kernel` lesson).  An explicit
    ``exec_mode=`` argument wins over the environment; unknown names
    raise :class:`SimulationError` instead of silently running the
    reference path.
    """
    name = exec_mode or os.environ.get("REPRO_EXEC_MODE", "") or "event"
    name = name.lower()
    if name not in EXEC_MODES:
        raise SimulationError(
            f"unknown exec mode {name!r} (expected one of {list(EXEC_MODES)})"
        )
    return name


class BatchKind:
    """One homogeneous class of bucket entries.

    Subclasses implement :meth:`apply_run`, which must fire every entry in
    ``bucket[start:end]`` exactly as the event path would have — same side
    effects, same order — and may vectorize any compute that only depends
    on state owned by this kind.  ``min_run`` is the smallest run worth
    the SoA gather; shorter runs stay on the scalar path.
    """

    #: Display name (``kernel_stats`` / debugging).
    name = "kind"
    #: Runs shorter than this are left to the scalar drain.
    min_run = 2

    def apply_run(self, bucket, start, end):
        raise NotImplementedError


class FusedKind(BatchKind):
    """Dispatch-fusion only: fire a run of same-shaped entries in one tight
    loop, skipping the drain's per-entry type and budget checks.  No SoA
    compute — the win is call overhead, so it only pays on wide runs."""

    name = "fused"
    min_run = 8

    def apply_run(self, bucket, start, end):
        for i in range(start, end):
            fn, args = bucket[i]
            fn(*args)


class BatchPlane:
    """The per-simulator registry of batch kinds plus its counters.

    Attached to a :class:`~repro.common.simulator.CalendarSimulator` via
    ``attach_batch_plane``; the drain consults :meth:`scan` at each bucket
    segment boundary.  Counters feed ``kernel_stats()`` (telemetry only —
    never result payloads).
    """

    __slots__ = ("_kinds", "batched_ops", "batch_flushes", "max_batch_width")

    def __init__(self):
        self._kinds = {}  # posted fn (bound method) -> BatchKind
        self.batched_ops = 0
        self.batch_flushes = 0
        self.max_batch_width = 0

    def register(self, fn, kind):
        """Route posted entries whose callback equals ``fn`` to ``kind``."""
        self._kinds[fn] = kind
        return kind

    @property
    def kinds(self):
        return self._kinds

    def scan(self, bucket, idx, n, remaining):
        """Contiguous batchable runs in ``bucket[idx:n]``.

        Returns ``[(start, end, kind), ...]`` in position order.  Only
        bare-tuple entries join runs (Events stay scalar, so cancellation
        semantics are untouched), and the walk stops once ``remaining``
        prospective fires have been counted — every run is guaranteed to
        fit inside the caller's event budget even if interleaved scalar
        entries fire first.
        """
        kinds = self._kinds
        runs = []
        append = runs.append
        prospective = 0
        run_start = -1
        run_kind = None
        i = idx
        while i < n:
            entry = bucket[i]
            if type(entry) is tuple:
                if prospective >= remaining:
                    break
                prospective += 1
                kind = kinds.get(entry[0])
                if kind is not None:
                    if kind is run_kind:
                        i += 1
                        continue
                    if run_kind is not None and i - run_start >= run_kind.min_run:
                        append((run_start, i, run_kind))
                    run_start = i
                    run_kind = kind
                    i += 1
                    continue
            elif not entry.cancelled:
                if prospective >= remaining:
                    break
                prospective += 1
            if run_kind is not None:
                if i - run_start >= run_kind.min_run:
                    append((run_start, i, run_kind))
                run_kind = None
            i += 1
        if run_kind is not None and i - run_start >= run_kind.min_run:
            append((run_start, i, run_kind))
        return runs

    def note_run(self, width):
        self.batch_flushes += 1
        self.batched_ops += width
        if width > self.max_batch_width:
            self.max_batch_width = width

    def stats(self):
        """The ``kernel_stats()`` extension for a batch-mode run."""
        return {
            "exec_mode": "batch",
            "batched_ops": self.batched_ops,
            "batch_flushes": self.batch_flushes,
            "max_batch_width": self.max_batch_width,
        }

    def __repr__(self):
        return (
            f"<BatchPlane kinds={len(self._kinds)} "
            f"ops={self.batched_ops} flushes={self.batch_flushes}>"
        )
