"""A single-server FIFO queue — the workhorse of every timed resource.

Network links, crossbar output ports, memory modules, buses: all are
modelled as a server that holds one item at a time for a service time and
keeps arrivals in FIFO order.  Completion hands the item to a callback.

This sits on the hot path of every machine model, so it is deliberately
lean: a ``deque`` (O(1) at both ends, unlike ``list.pop(0)``), the
fire-and-forget ``post`` scheduling fast path, and ``__slots__``.
"""

from collections import deque

from .stats import TimeWeighted, UtilizationTracker

__all__ = ["FifoServer"]


class FifoServer:
    """One resource serving one item at a time, FIFO."""

    __slots__ = ("sim", "service_time", "name", "_queue", "_busy",
                 "queue_depth", "utilization", "items_served")

    def __init__(self, sim, service_time, name="server"):
        self.sim = sim
        self.service_time = service_time
        self.name = name
        self._queue = deque()
        self._busy = False
        self.queue_depth = TimeWeighted()
        self.utilization = UtilizationTracker()
        self.items_served = 0

    def submit(self, item, on_done, service_time=None):
        """Enqueue ``item``; call ``on_done(item)`` when service completes."""
        queue = self._queue
        queue.append((item, on_done, service_time))
        self.queue_depth.update(self.sim._now, len(queue))
        if not self._busy:
            self._start_next()

    def _start_next(self):
        queue = self._queue
        if not queue:
            return
        item, on_done, service_time = queue.popleft()
        sim = self.sim
        now = sim._now
        self.queue_depth.update(now, len(queue))
        self._busy = True
        self.utilization.begin(now)
        duration = self.service_time if service_time is None else service_time
        sim.post(duration, self._complete, item, on_done)

    def _complete(self, item, on_done):
        self.utilization.end(self.sim._now)
        self._busy = False
        self.items_served += 1
        on_done(item)
        if not self._busy:  # on_done may have resubmitted synchronously
            self._start_next()

    @property
    def queued(self):
        return len(self._queue)

    @property
    def busy(self):
        return self._busy

    def __repr__(self):
        return (
            f"<FifoServer {self.name!r} queued={self.queued} busy={self._busy} "
            f"served={self.items_served}>"
        )
