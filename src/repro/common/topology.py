"""Machine partition graphs — the topology API behind the sharded kernel.

A machine that wants to run on the conservative-parallel event kernel
(:mod:`repro.common.psim`) describes itself as a *partition graph*:

* :class:`TopologyUnit` — a simulation unit that owns private state (a
  processing element with its pipeline servers, a memory bank, a switch);
* :class:`TopologyLink` — a directed communication edge between two
  units, carrying the **minimum latency** (in cycles) of any message that
  ever crosses it.  That minimum is the Chandy–Misra *lookahead*: a shard
  that has simulated up to time ``t`` promises never to send a message
  timestamped earlier than ``t + lookahead``.

A link with ``lookahead <= 0`` declares a *synchronous* coupling — the
two units hand work to each other within a single instant (an inline
queue ``submit``, a shared bus arbitration) and therefore can never be
simulated on different shards without violating causality.
:meth:`MachineTopology.partition` contracts all such edges first, so a
machine whose units synchronize through zero-slack shared hardware
honestly collapses to one shard.  That is the paper's argument about von
Neumann multiprocessors, applied to our own simulator: only explicit
communication with real latency creates exploitable parallelism.

The graph is declarative (names, not object references); the machine
that builds live simulation objects maps unit indices to the objects it
registers with :meth:`repro.common.psim.ShardedSimulator.configure_shards`.
"""

from dataclasses import dataclass

from .errors import SimulationError

__all__ = ["TopologyUnit", "TopologyLink", "MachineTopology"]


@dataclass(frozen=True)
class TopologyUnit:
    """One schedulable unit of a machine's partition graph."""

    name: str
    kind: str = "unit"
    #: Relative simulation cost, used to balance shards.
    weight: float = 1.0


@dataclass(frozen=True)
class TopologyLink:
    """A directed edge; ``lookahead`` is the minimum message latency."""

    src: str
    dst: str
    lookahead: float


class MachineTopology:
    """Units + links; knows how to partition itself across N shards."""

    def __init__(self, units, links):
        self.units = list(units)
        self._index = {}
        for position, unit in enumerate(self.units):
            if unit.name in self._index:
                raise SimulationError(
                    f"duplicate topology unit {unit.name!r}"
                )
            self._index[unit.name] = position
        self.links = list(links)
        for link in self.links:
            for endpoint in (link.src, link.dst):
                if endpoint not in self._index:
                    raise SimulationError(
                        f"topology link {link.src!r}->{link.dst!r} names "
                        f"unknown unit {endpoint!r}"
                    )

    # ------------------------------------------------------------------
    def _groups(self):
        """Union-find contraction of every ``lookahead <= 0`` edge.

        Returns ``(root_of, groups)`` where ``groups`` maps each root to
        the sorted unit positions it absorbed.  Units joined by a
        zero-lookahead link must share a shard; everything else may
        split.
        """
        parent = list(range(len(self.units)))

        def find(i):
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for link in self.links:
            if link.lookahead <= 0:
                a = find(self._index[link.src])
                b = find(self._index[link.dst])
                if a != b:
                    parent[max(a, b)] = min(a, b)
        groups = {}
        for position in range(len(self.units)):
            groups.setdefault(find(position), []).append(position)
        return find, groups

    @property
    def max_shards(self):
        """Units that may legally run apart (post-contraction groups)."""
        if not self.units:
            return 1
        _, groups = self._groups()
        return len(groups)

    def partition(self, n_shards):
        """Assign every unit a shard in ``[0, n_shards)``.

        Zero-lookahead-coupled units stay together; the resulting groups
        are spread across shards balancing total unit weight (ties break
        toward the lowest shard, so the assignment is deterministic).
        Asking for more shards than the graph permits silently uses
        fewer — the caller reads the effective count off the result.
        """
        if n_shards < 1:
            raise SimulationError(f"partition needs n_shards >= 1, got {n_shards}")
        assignment = [0] * len(self.units)
        if n_shards == 1 or not self.units:
            return assignment
        _, groups = self._groups()
        # Heaviest groups first; first-unit position breaks ties so the
        # order (hence the assignment) is stable run to run.
        ordered = sorted(
            groups.values(),
            key=lambda members: (
                -sum(self.units[m].weight for m in members),
                members[0],
            ),
        )
        loads = [0.0] * n_shards
        for members in ordered:
            shard = min(range(n_shards), key=lambda s: (loads[s], s))
            loads[shard] += sum(self.units[m].weight for m in members)
            for member in members:
                assignment[member] = shard
        return assignment

    def shard_links(self, assignment):
        """Cross-shard channels implied by ``assignment``.

        Returns ``{(src_shard, dst_shard): lookahead}`` with the minimum
        lookahead over every unit-level link crossing that shard pair.
        """
        channels = {}
        for link in self.links:
            src = assignment[self._index[link.src]]
            dst = assignment[self._index[link.dst]]
            if src == dst:
                continue
            key = (src, dst)
            previous = channels.get(key)
            if previous is None or link.lookahead < previous:
                channels[key] = link.lookahead
        return channels

    # ------------------------------------------------------------------
    def as_dict(self):
        """JSON-friendly form (the ``registry.describe`` payload)."""
        return {
            "units": [
                {"name": u.name, "kind": u.kind, "weight": u.weight}
                for u in self.units
            ],
            "links": [
                {"src": l.src, "dst": l.dst, "lookahead": l.lookahead}
                for l in self.links
            ],
            "max_shards": self.max_shards,
        }

    def __repr__(self):
        return (
            f"<MachineTopology units={len(self.units)} "
            f"links={len(self.links)} max_shards={self.max_shards}>"
        )
