"""Deterministic random number streams for simulations.

Each component that needs randomness derives its own named substream from a
single experiment seed, so adding a component (or reordering calls inside
one) never perturbs the random sequence seen by another — a standard trick
for reproducible discrete-event simulation.
"""

import random
import zlib

__all__ = ["substream", "DeterministicRng"]


def substream(seed, name):
    """Return a :class:`random.Random` derived from ``seed`` and ``name``."""
    mix = zlib.crc32(name.encode("utf-8"))
    return random.Random((int(seed) << 32) ^ mix)


class DeterministicRng:
    """A factory of named substreams sharing one experiment seed."""

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, name):
        """Get (creating on first use) the substream for ``name``."""
        if name not in self._streams:
            self._streams[name] = substream(self.seed, name)
        return self._streams[name]
