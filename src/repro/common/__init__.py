"""Shared substrate: event kernel, statistics, deterministic RNG, errors."""

from .errors import (
    CompileError,
    DeadlockError,
    GraphError,
    IStructureError,
    MachineError,
    NetworkError,
    ReproError,
    SimulationError,
)
from .rng import DeterministicRng, substream
from .simulator import Event, Simulator
from .stats import (
    Counter,
    Histogram,
    SeriesRecorder,
    TimeWeighted,
    UtilizationTracker,
    summarize,
)

__all__ = [
    "CompileError",
    "Counter",
    "DeadlockError",
    "DeterministicRng",
    "Event",
    "GraphError",
    "Histogram",
    "IStructureError",
    "MachineError",
    "NetworkError",
    "ReproError",
    "SeriesRecorder",
    "SimulationError",
    "Simulator",
    "TimeWeighted",
    "UtilizationTracker",
    "substream",
    "summarize",
]
