"""Exception hierarchy shared by every subsystem in :mod:`repro`.

All library errors derive from :class:`ReproError` so that callers can
catch everything this package raises with a single ``except`` clause while
still being able to discriminate by subsystem.
"""


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """The discrete-event kernel was driven into an invalid state."""


class GraphError(ReproError):
    """A dataflow graph is malformed (dangling arc, bad arity, ...)."""


class CompileError(ReproError):
    """The Id-like front end rejected a source program."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class MachineError(ReproError):
    """A simulated machine (dataflow or von Neumann) hit a fatal condition."""


class IStructureError(MachineError):
    """Violation of the I-structure discipline (e.g. multiple writes)."""


class NetworkError(ReproError):
    """A packet network was misconfigured or a packet is undeliverable."""


class DeadlockError(MachineError):
    """Simulation reached quiescence with unfinished work outstanding."""

    def __init__(self, message, pending=None):
        super().__init__(message)
        #: Optional description of the work items that can never complete.
        self.pending = tuple(pending) if pending is not None else ()
