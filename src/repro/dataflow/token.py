"""The token: ``<d, PE, tag, nt, port, data>`` (§2.2.2).

``d`` classifies the token — "Other paths through the processing element
provide for the cases where an incoming token is destined for the
I-Structure Storage (d=1), or is destined for the PE Controller (d=2)"
(§2.2.3).  Normal data tokens are d=0.

``PE`` is filled in by the output section from the tag via the machine's
mapping policy; ``nt`` is the total operand count of the target
instruction; ``port`` says which operand this token carries.

Millions of tokens flow through a single experiment, so the class is a
plain ``__slots__`` record rather than a dataclass: construction is the
hot operation, and attribute access happens in every pipeline stage.
"""

import enum

__all__ = ["Token", "TokenKind"]


class TokenKind(enum.IntEnum):
    """The ``d`` field."""

    NORMAL = 0  # d=0: ordinary data token for the waiting-matching section
    STRUCTURE = 1  # d=1: I-structure FETCH/STORE request
    CONTROL = 2  # d=2: PE-controller traffic (allocation, management)


class Token:
    """One token in flight.  Treated as immutable by all machine code."""

    __slots__ = ("tag", "port", "data", "kind", "nt", "pe", "cause")

    def __init__(self, tag, port, data, kind=TokenKind.NORMAL, nt=1, pe=None,
                 cause=None):
        self.tag = tag
        self.port = port
        self.data = data
        self.kind = kind
        self.nt = nt
        self.pe = pe
        # Provenance: eid of the trace event that produced this token.  Only
        # populated when the machine's bus runs with provenance=True;
        # excluded from repr so trace detail strings stay byte-compatible.
        self.cause = cause

    def routed_to(self, pe):
        """Copy of the token with its PE field filled in."""
        return Token(self.tag, self.port, self.data, self.kind, self.nt, pe,
                     self.cause)

    @property
    def needs_partner(self):
        """True when the waiting-matching section must pair this token."""
        return self.kind is TokenKind.NORMAL and self.nt >= 2

    def __eq__(self, other):
        if self is other:
            return True
        if type(other) is not Token:
            return NotImplemented
        return (
            self.tag == other.tag
            and self.port == other.port
            and self.data == other.data
            and self.kind == other.kind
            and self.nt == other.nt
            and self.pe == other.pe
            and self.cause == other.cause
        )

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self):
        return hash((self.tag, self.port, self.data, self.kind, self.nt,
                     self.pe, self.cause))

    def __repr__(self):
        return (
            f"<d={int(self.kind)},PE={self.pe},{self.tag!r},"
            f"nt={self.nt},p{self.port},{self.data!r}>"
        )
