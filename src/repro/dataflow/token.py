"""The token: ``<d, PE, tag, nt, port, data>`` (§2.2.2).

``d`` classifies the token — "Other paths through the processing element
provide for the cases where an incoming token is destined for the
I-Structure Storage (d=1), or is destined for the PE Controller (d=2)"
(§2.2.3).  Normal data tokens are d=0.

``PE`` is filled in by the output section from the tag via the machine's
mapping policy; ``nt`` is the total operand count of the target
instruction; ``port`` says which operand this token carries.
"""

import enum
from dataclasses import dataclass
from typing import Optional

from .tags import Tag

__all__ = ["Token", "TokenKind"]


class TokenKind(enum.IntEnum):
    """The ``d`` field."""

    NORMAL = 0  # d=0: ordinary data token for the waiting-matching section
    STRUCTURE = 1  # d=1: I-structure FETCH/STORE request
    CONTROL = 2  # d=2: PE-controller traffic (allocation, management)


@dataclass(frozen=True)
class Token:
    """One token in flight."""

    tag: Tag
    port: int
    data: object
    kind: TokenKind = TokenKind.NORMAL
    nt: int = 1
    pe: Optional[int] = None
    # Provenance: eid of the trace event that produced this token.  Only
    # populated when the machine's bus runs with provenance=True; excluded
    # from repr so trace detail strings stay byte-compatible.
    cause: Optional[int] = None

    def routed_to(self, pe):
        """Copy of the token with its PE field filled in."""
        return Token(self.tag, self.port, self.data, self.kind, self.nt, pe,
                     self.cause)

    @property
    def needs_partner(self):
        """True when the waiting-matching section must pair this token."""
        return self.kind is TokenKind.NORMAL and self.nt >= 2

    def __repr__(self):
        return (
            f"<d={int(self.kind)},PE={self.pe},{self.tag!r},"
            f"nt={self.nt},p{self.port},{self.data!r}>"
        )
