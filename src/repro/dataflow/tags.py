"""Activity names and runtime tags (§2.2.2).

An activity name has four parts — ``u`` (context), ``c`` (code block name),
``s`` (statement number) and ``i`` (initiation/iteration number) — and "the
context itself is specified by an activity name, thus making the definition
recursive".  We represent that faithfully: :attr:`Tag.context` is either
``None`` (the root context the entry procedure runs in) or another
:class:`Tag`, namely the activity name of the invocation point (the CALL
site or the loop's L site).  Because a Tag identifies an invocation
uniquely and recursion deepens the chain, the namespace is unbounded,
exactly as the paper requires of a scalable machine.

Tags are immutable and hashable; the waiting-matching section pairs tokens
by comparing them ("we can match up related tokens ... by comparing the
tags that they carry").

Tags sit on the hottest path of the tagged-token machine — every token
carries one, the waiting-matching store is keyed by them, and the mapping
policy hashes them — so this module is tuned accordingly:

* ``__slots__`` and a hash computed once at construction (the recursive
  context chain makes naive re-hashing O(depth) per dict probe);
* **interning** via :func:`intern_tag`: every tag derived by the
  tag-manipulation operators is canonicalized, so structurally equal tags
  are usually the *same object* and dict probes short-circuit on identity
  (CPython compares keys by identity before calling ``__eq__``).  The
  table is bounded; clearing it costs only the identity fast path, never
  correctness, because equality stays structural.
"""

import zlib

__all__ = ["Tag", "intern_tag", "reset_intern_table"]


class Tag:
    """An activity name ``(u, c, s, i)``.  Immutable."""

    __slots__ = ("context", "code_block", "statement", "iteration",
                 "_hash", "_map_key", "_tid")

    def __init__(self, context, code_block, statement, iteration=1):
        set_ = object.__setattr__
        set_(self, "context", context)
        set_(self, "code_block", code_block)
        set_(self, "statement", statement)
        set_(self, "iteration", iteration)
        set_(self, "_hash", hash((context, code_block, statement, iteration)))
        set_(self, "_map_key", None)  # cache for mapping.stable_tag_key
        # Small sequential int assigned at intern time (-1 = uninterned):
        # the batch waiting-matching kernel groups tokens by (pe, _tid)
        # in int arrays, so only canonical tags may carry a real id.
        set_(self, "_tid", -1)

    def __setattr__(self, name, value):
        raise AttributeError(f"Tag is immutable (tried to set {name!r})")

    def __delattr__(self, name):
        raise AttributeError(f"Tag is immutable (tried to delete {name!r})")

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        if self is other:
            return True
        if type(other) is not Tag:
            return NotImplemented
        return (
            self.statement == other.statement
            and self.iteration == other.iteration
            and self.code_block == other.code_block
            and self.context == other.context
        )

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # -- derivation helpers used by the tag-manipulation opcodes --------
    def at_statement(self, statement):
        """Same activity, different statement (ordinary result arcs)."""
        return intern_tag(self.context, self.code_block, statement,
                          self.iteration)

    def next_iteration(self, statement):
        """The D operator: advance to iteration i+1 at ``statement``."""
        return intern_tag(self.context, self.code_block, statement,
                          self.iteration + 1)

    def reset_iteration(self, statement):
        """The D⁻¹ operator: canonicalize to iteration 1 at ``statement``."""
        return intern_tag(self.context, self.code_block, statement, 1)

    def enter(self, site, target_block, statement):
        """The L / CALL context push: a fresh context named after this
        invocation point (this tag with ``statement`` replaced by the
        site id), entering ``target_block`` at iteration 1."""
        invocation = intern_tag(self.context, self.code_block, site,
                                self.iteration)
        return intern_tag(invocation, target_block, statement, 1)

    @property
    def depth(self):
        """Nesting depth of the context chain (root = 0)."""
        depth = 0
        context = self.context
        while context is not None:
            depth += 1
            context = context.context
        return depth

    def __repr__(self):
        # The context label must be a *structural* digest, not id():
        # traces of identical runs have to be byte-identical.
        if self.context is None:
            context = "·"
        else:
            digest = zlib.crc32(repr(self.context).encode("utf-8"))
            context = f"u{digest & 0xFFFF:04x}"
        return f"⟨{context},{self.code_block},{self.statement},{self.iteration}⟩"


#: Canonical tag per (context, code_block, statement, iteration).  Bounded:
#: when full, *new* tags simply stop being interned (they are returned
#: uncached), which only forfeits the identity fast path for the excess
#: tags.  The table is never cleared mid-run — clearing would let two
#: structurally equal tags stop being the same object while a machine
#: holds both, which is exactly the hazard interning exists to avoid
#: (dict probes and cached ``_map_key`` values assume a canonical
#: object per activity name within a run).  Eviction is run-boundary
#: only: :func:`reset_intern_table` is called when a machine or
#: interpreter starts a fresh program invocation.
_INTERN = {}
_INTERN_MAX = 1 << 17


def intern_tag(context, code_block, statement, iteration=1):
    """The canonical :class:`Tag` for the given activity name.

    At capacity the tag is built but not cached: equality stays
    structural, correctness is unaffected, and every previously interned
    tag keeps its canonical identity for the rest of the run.
    """
    key = (context, code_block, statement, iteration)
    tag = _INTERN.get(key)
    if tag is None:
        tag = Tag(context, code_block, statement, iteration)
        if len(_INTERN) < _INTERN_MAX:
            object.__setattr__(tag, "_tid", len(_INTERN))
            _INTERN[key] = tag
    return tag


def reset_intern_table():
    """Run-boundary eviction: drop every canonical tag.

    Called at the start of a machine/interpreter invocation, when no
    live run can be holding interned tags — the only moment clearing is
    identity-safe.  Long-lived processes (the sweep engine, test
    suites) otherwise accumulate one table entry per distinct activity
    name ever seen.
    """
    _INTERN.clear()
