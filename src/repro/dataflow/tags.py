"""Activity names and runtime tags (§2.2.2).

An activity name has four parts — ``u`` (context), ``c`` (code block name),
``s`` (statement number) and ``i`` (initiation/iteration number) — and "the
context itself is specified by an activity name, thus making the definition
recursive".  We represent that faithfully: :attr:`Tag.context` is either
``None`` (the root context the entry procedure runs in) or another
:class:`Tag`, namely the activity name of the invocation point (the CALL
site or the loop's L site).  Because a Tag identifies an invocation
uniquely and recursion deepens the chain, the namespace is unbounded,
exactly as the paper requires of a scalable machine.

Tags are immutable and hashable; the waiting-matching section pairs tokens
by comparing them ("we can match up related tokens ... by comparing the
tags that they carry").
"""

import zlib
from dataclasses import dataclass
from typing import Optional

__all__ = ["Tag"]


@dataclass(frozen=True)
class Tag:
    """An activity name ``(u, c, s, i)``."""

    context: Optional["Tag"]
    code_block: str
    statement: int
    iteration: int = 1

    # -- derivation helpers used by the tag-manipulation opcodes --------
    def at_statement(self, statement):
        """Same activity, different statement (ordinary result arcs)."""
        return Tag(self.context, self.code_block, statement, self.iteration)

    def next_iteration(self, statement):
        """The D operator: advance to iteration i+1 at ``statement``."""
        return Tag(self.context, self.code_block, statement, self.iteration + 1)

    def reset_iteration(self, statement):
        """The D⁻¹ operator: canonicalize to iteration 1 at ``statement``."""
        return Tag(self.context, self.code_block, statement, 1)

    def enter(self, site, target_block, statement):
        """The L / CALL context push: a fresh context named after this
        invocation point (this tag with ``statement`` replaced by the
        site id), entering ``target_block`` at iteration 1."""
        invocation = Tag(self.context, self.code_block, site, self.iteration)
        return Tag(invocation, target_block, statement, 1)

    @property
    def depth(self):
        """Nesting depth of the context chain (root = 0)."""
        depth = 0
        context = self.context
        while context is not None:
            depth += 1
            context = context.context
        return depth

    def __repr__(self):
        # The context label must be a *structural* digest, not id():
        # traces of identical runs have to be byte-identical.
        if self.context is None:
            context = "·"
        else:
            digest = zlib.crc32(repr(self.context).encode("utf-8"))
            context = f"u{digest & 0xFFFF:04x}"
        return f"⟨{context},{self.code_block},{self.statement},{self.iteration}⟩"
