"""Runtime value types carried in the data field of tokens.

Ordinary numbers and booleans are plain Python values.  Three special
types exist:

* :class:`~repro.istructure.heap.StructureRef` — a pointer into
  I-structure storage (re-exported here for convenience);
* :class:`FunctionRef` — a first-class procedure value, resolved by a
  dynamic ``CALL``;
* :class:`Continuation` — the return linkage a ``CALL`` sends to the
  callee's ``RETURN`` instruction: where (context, block, iteration) and to
  which arcs the result must be delivered.  ``Continuation.HALT`` marks the
  top-level call injected by the machine; a RETURN that consumes it ends
  the program.
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["Continuation", "FunctionRef", "StructureRef"]

from ..istructure.heap import StructureRef  # noqa: F401  (re-export)
from ..graph.instruction import Destination
from .tags import Tag, intern_tag


@dataclass(frozen=True)
class FunctionRef:
    """A procedure as a value: just its code block name."""

    block: str

    def __repr__(self):
        return f"fn:{self.block}"


@dataclass(frozen=True)
class Continuation:
    """Return linkage for one procedure invocation."""

    context: Optional[Tag]
    code_block: str
    iteration: int
    dests: Tuple[Destination, ...] = field(default=())
    halt: bool = False

    def return_tags(self):
        """The (tag, port) pairs the result token(s) must be sent to."""
        return [
            (intern_tag(self.context, self.code_block, d.statement,
                        self.iteration), d.port)
            for d in self.dests
        ]

    def __repr__(self):
        if self.halt:
            return "⊥halt"
        arcs = ",".join(f"{d.statement}.{d.port}" for d in self.dests)
        return f"cont:{self.code_block}@i{self.iteration}->[{arcs}]"


#: The continuation of the whole program.
Continuation.HALT = Continuation(
    context=None, code_block="", iteration=1, dests=(), halt=True
)
