"""Execution tracing for the timed machine.

Enable with ``MachineConfig(trace=True)``; the machine then records one
event per significant action (instruction execution, token parking,
matches, allocations, the final result) into a bounded ring buffer.
Intended for debugging graphs and for teaching — the formatted trace
reads like the paper's prose: tokens arriving, waiting, matching, firing.

``TraceLog`` is now a thin compatibility shim over the observability
layer (:mod:`repro.obs`): its storage is a
:class:`~repro.obs.sinks.RingSink`, and it can join a
:class:`~repro.obs.bus.TraceBus` so the same event stream that fills
this ring also feeds JSONL or Chrome-trace sinks.  The historical API —
``record``, ``events`` as ``(time, pe, kind, detail)`` tuples,
``by_kind``, ``format`` — is unchanged.
"""

from ..obs import RingSink, TraceEvent

__all__ = ["TraceLog"]


class TraceLog:
    """A bounded ring buffer of (time, pe, kind, detail) events.

    ``limit=None`` keeps everything; ``limit=0`` counts but stores
    nothing.  ``dropped`` is exact for every limit (it is derived from
    the recorded/retained difference rather than maintained by edge
    detection, which went wrong for ``deque(maxlen=0)``).
    """

    def __init__(self, limit=100_000, bus=None):
        self._sink = RingSink(limit)
        self._bus = bus
        if bus is not None:
            bus.add_sink(self._sink)

    @property
    def limit(self):
        return self._sink.limit

    @property
    def recorded(self):
        return self._sink.recorded

    @property
    def dropped(self):
        return self._sink.dropped

    def record(self, time, pe, kind, detail):
        """Record one event directly (standalone use, without a bus)."""
        self._sink.handle(TraceEvent(time, pe, kind, detail))

    @property
    def events(self):
        return [event.as_tuple() for event in self._sink.events]

    def by_kind(self, kind):
        return [
            event.as_tuple()
            for event in self._sink.events
            if event.kind == kind
        ]

    def format(self, last=40):
        """The trailing events, one line each, under a count header."""
        tail = self.events[-last:]
        lines = [
            f"trace: {self.recorded} event(s) recorded, showing last "
            f"{len(tail)}"
        ]
        for time, pe, kind, detail in tail:
            source = f"pe{pe}" if isinstance(pe, int) else str(pe)
            lines.append(f"t={time:<8g} {source} {kind:<6} {detail}")
        if self.dropped:
            lines.append(f"... ({self.dropped} earlier events dropped)")
        return "\n".join(lines)

    def __len__(self):
        return len(self._sink)

    def __repr__(self):
        return f"<TraceLog events={len(self._sink)} dropped={self.dropped}>"
