"""Execution tracing for the timed machine.

Enable with ``MachineConfig(trace=True)``; the machine then records one
event per significant action (instruction execution, token parking,
matches, allocations, the final result) into a bounded ring buffer.
Intended for debugging graphs and for teaching — the formatted trace
reads like the paper's prose: tokens arriving, waiting, matching, firing.
"""

from collections import deque

__all__ = ["TraceLog"]


class TraceLog:
    """A bounded ring buffer of (time, pe, kind, detail) events."""

    def __init__(self, limit=100_000):
        self.limit = limit
        self._events = deque(maxlen=limit)
        self.dropped = 0
        self.recorded = 0

    def record(self, time, pe, kind, detail):
        if len(self._events) == self.limit:
            self.dropped += 1
        self.recorded += 1
        self._events.append((time, pe, kind, detail))

    @property
    def events(self):
        return list(self._events)

    def by_kind(self, kind):
        return [e for e in self._events if e[2] == kind]

    def format(self, last=40):
        """The trailing events, one line each."""
        lines = []
        for time, pe, kind, detail in list(self._events)[-last:]:
            lines.append(f"t={time:<8g} pe{pe} {kind:<6} {detail}")
        if self.dropped:
            lines.append(f"... ({self.dropped} earlier events dropped)")
        return "\n".join(lines)

    def __len__(self):
        return len(self._events)

    def __repr__(self):
        return f"<TraceLog events={len(self._events)} dropped={self.dropped}>"
