"""The tagged-token dataflow machine (S4/S5 in DESIGN.md).

Static programs come from :mod:`repro.graph`; this package provides their
dynamic semantics twice over:

* :class:`Interpreter` — the untimed reference engine (unbounded
  parallelism, ideal parallelism profiles);
* :class:`TaggedTokenMachine` — the timed multi-PE machine of Figures 2-3
  and 2-4, with waiting-matching stores, per-unit service times, a packet
  network, and distributed I-structure controllers.
"""

from .exec_core import (
    ProgramResult,
    Send,
    StructureAlloc,
    StructureRead,
    StructureWrite,
    assemble_operands,
    execute,
)
from .interpreter import Interpreter, run_program
from .machine import MachineConfig, MachineResult, TaggedTokenMachine
from .mapping import ByContextMapping, HashMapping, stable_tag_key
from .pe import ProcessingElement
from .tags import Tag
from .token import Token, TokenKind
from .trace import TraceLog
from .values import Continuation, FunctionRef, StructureRef

__all__ = [
    "ByContextMapping",
    "Continuation",
    "FunctionRef",
    "HashMapping",
    "Interpreter",
    "MachineConfig",
    "MachineResult",
    "ProcessingElement",
    "TaggedTokenMachine",
    "stable_tag_key",
    "ProgramResult",
    "Send",
    "StructureAlloc",
    "StructureRead",
    "StructureWrite",
    "StructureRef",
    "Tag",
    "Token",
    "TokenKind",
    "TraceLog",
    "assemble_operands",
    "execute",
    "run_program",
]
