"""Operational semantics of every opcode, shared by both execution engines.

:func:`execute` maps (instruction, tag, operands) to a list of *effects*.
Pure, control, tag-manipulation and linkage opcodes only ever produce
:class:`Send` effects — all tag arithmetic (the D/D⁻¹/L/L⁻¹ algebra, CALL
context creation, RETURN continuation unpacking) is computed here, locally,
from information carried on the tokens and stored in the instruction.
Nothing needs a central table, which is what makes the architecture
scalable.

Structure opcodes produce :class:`StructureRead` / :class:`StructureWrite`
/ :class:`StructureAlloc` effects; *when and where* those are serviced (an
untimed heap vs. a distributed set of timed I-structure controllers behind
a packet network) is the difference between the reference interpreter and
the timed TTDA, and is exactly the part the paper leaves to the machine
organization.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..common.errors import MachineError
from ..graph.codeblock import CodeBlock
from ..graph.opcodes import Opcode, PURE_BINARY, PURE_UNARY
from ..istructure.heap import StructureRef
from .tags import Tag, intern_tag
from .values import Continuation, FunctionRef

__all__ = [
    "Send",
    "StructureRead",
    "StructureWrite",
    "StructureAlloc",
    "ProgramResult",
    "assemble_operands",
    "execute",
    "BATCH_INT_BINARY",
    "BATCH_BOOL_RESULT",
    "batched_effects",
]


@dataclass(frozen=True, slots=True)
class Send:
    """Deliver ``value`` as a token to (``tag``, ``port``)."""

    tag: Tag
    port: int
    value: object


@dataclass(frozen=True, slots=True)
class StructureRead:
    """A SELECT turned FETCH: read ``ref[index]``, reply to ``replies``."""

    ref: StructureRef
    index: int
    replies: Tuple[Tuple[Tag, int], ...]


@dataclass(frozen=True, slots=True)
class StructureWrite:
    """An APPEND turned STORE: write ``ref[index] = value``."""

    ref: StructureRef
    index: int
    value: object


@dataclass(frozen=True, slots=True)
class StructureAlloc:
    """Allocate a structure of ``size`` cells; send the ref to ``replies``."""

    size: int
    replies: Tuple[Tuple[Tag, int], ...]


@dataclass(frozen=True, slots=True)
class ProgramResult:
    """A RETURN consumed the HALT continuation: the program's answer."""

    value: object


def assemble_operands(instruction, by_port):
    """Build the full operand list, folding in the immediate if any.

    ``by_port`` maps port number -> value for the token-fed ports.
    """
    operands = []
    for port in range(instruction.natural_arity):
        if port == instruction.constant_port:
            operands.append(instruction.constant)
        else:
            try:
                operands.append(by_port[port])
            except KeyError:
                raise MachineError(
                    f"instruction {instruction!r} fired without operand "
                    f"port {port}"
                ) from None
    return operands


#: Memoized (statement, port) pairs per destination tuple.  Keyed by the
#: tuple's id; each entry pins its tuple, so the id cannot be recycled
#: while the entry lives.  Builder/optimizer passes always *replace* a
#: destination tuple rather than mutating it, so identity implies
#: validity.  Bounded: cleared wholesale on overflow (pure cache).
_PAIRS_CACHE = {}
_PAIRS_CACHE_MAX = 1 << 15


def _dest_pairs(dests):
    entry = _PAIRS_CACHE.get(id(dests))
    if entry is not None and entry[0] is dests:
        return entry[1]
    if len(_PAIRS_CACHE) >= _PAIRS_CACHE_MAX:
        _PAIRS_CACHE.clear()
    pairs = tuple((d.statement, d.port) for d in dests)
    _PAIRS_CACHE[id(dests)] = (dests, pairs)
    return pairs


def _fanout(tag, dests, value):
    at_statement = tag.at_statement
    return [Send(at_statement(s), p, value) for s, p in _dest_pairs(dests)]


def _reply_arcs(tag, dests):
    at_statement = tag.at_statement
    return tuple((at_statement(s), p) for s, p in _dest_pairs(dests))


#: Opcodes the batch ALU kernel (``exec_mode="batch"``) may evaluate
#: vectorized over machine-int operands: closed over int64 without
#: overflow when |operand| < 2**31, exception-free, and bit-identical to
#: the scalar lambda above.  Comparisons are mapped back through bool()
#: at extraction, everything else through int(), so no numpy scalar type
#: ever leaks into a token.
BATCH_INT_BINARY = (
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.MIN, Opcode.MAX,
    Opcode.LT, Opcode.LE, Opcode.GT, Opcode.GE, Opcode.EQ, Opcode.NE,
)
BATCH_BOOL_RESULT = frozenset(
    (Opcode.LT, Opcode.LE, Opcode.GT, Opcode.GE, Opcode.EQ, Opcode.NE)
)


def batched_effects(instruction, tag, value):
    """Effects of a PURE_BINARY instruction whose ``value`` was computed
    out-of-band (the batch ALU kernel): exactly the fanout
    :func:`execute` would have produced for the same value."""
    return _fanout(tag, instruction.dests, value)


def execute(program, instruction, tag, operands):
    """Run one enabled instruction; return its effects.

    ``operands`` is the full positional operand list (see
    :func:`assemble_operands`).
    """
    opcode = instruction.opcode

    if opcode in PURE_BINARY:
        try:
            value = PURE_BINARY[opcode](operands[0], operands[1])
        except (TypeError, ValueError, ZeroDivisionError) as exc:
            raise MachineError(
                f"{opcode.value} failed at {tag!r}: {exc}"
            ) from exc
        return _fanout(tag, instruction.dests, value)

    if opcode in PURE_UNARY:
        try:
            value = PURE_UNARY[opcode](operands[0])
        except (TypeError, ValueError) as exc:
            raise MachineError(
                f"{opcode.value} failed at {tag!r}: {exc}"
            ) from exc
        return _fanout(tag, instruction.dests, value)

    if opcode is Opcode.CONSTANT:
        return _fanout(tag, instruction.dests, instruction.literal)

    if opcode is Opcode.GATE:
        return _fanout(tag, instruction.dests, operands[0])

    if opcode is Opcode.SINK:
        return []

    if opcode is Opcode.SWITCH:
        control = operands[1]
        if not isinstance(control, bool):
            raise MachineError(
                f"SWITCH control at {tag!r} is {control!r}, not a boolean"
            )
        side = instruction.dests if control else instruction.dests_false
        return _fanout(tag, side, operands[0])

    if opcode is Opcode.D:
        next_iteration = tag.next_iteration
        return [
            Send(next_iteration(s), p, operands[0])
            for s, p in _dest_pairs(instruction.dests)
        ]

    if opcode is Opcode.D_INV:
        reset_iteration = tag.reset_iteration
        return [
            Send(reset_iteration(s), p, operands[0])
            for s, p in _dest_pairs(instruction.dests)
        ]

    if opcode is Opcode.L:
        loop = program.block(instruction.target_block)
        targets = loop.param_targets[instruction.param_index]
        site = instruction.site
        name = loop.name
        return [
            Send(tag.enter(site, name, s), p, operands[0])
            for s, p in _dest_pairs(targets)
        ]

    if opcode is Opcode.L_INV:
        return _loop_exit(program, instruction, tag, operands[0])

    if opcode is Opcode.CALL:
        return _call(program, instruction, tag, operands)

    if opcode is Opcode.RETURN:
        return _return(operands[0], operands[1], tag)

    if opcode is Opcode.I_ALLOC:
        size = operands[0]
        if not isinstance(size, int) or isinstance(size, bool) or size < 0:
            raise MachineError(f"I_ALLOC at {tag!r}: bad size {size!r}")
        return [StructureAlloc(size, _reply_arcs(tag, instruction.dests))]

    if opcode is Opcode.I_FETCH:
        ref, index = operands
        _check_ref(ref, tag)
        ref.check_index(index)
        return [StructureRead(ref, index, _reply_arcs(tag, instruction.dests))]

    if opcode is Opcode.I_STORE:
        ref, index, value = operands
        _check_ref(ref, tag)
        ref.check_index(index)
        effects = [StructureWrite(ref, index, value)]
        # The onward arcs carry an *issue* signal (stores are one-way d=1
        # tokens; the paper has no store acknowledgement).
        effects.extend(_fanout(tag, instruction.dests, value))
        return effects

    raise MachineError(f"unimplemented opcode {opcode!r}")


def _check_ref(ref, tag):
    if not isinstance(ref, StructureRef):
        raise MachineError(
            f"structure operation at {tag!r} applied to non-structure {ref!r}"
        )


def _loop_exit(program, instruction, tag, value):
    invocation = tag.context
    if invocation is None:
        raise MachineError(f"L⁻¹ at {tag!r} has no enclosing context to restore")
    block = program.block(tag.code_block)
    dests = block.exit_dests[instruction.param_index]
    restored_base = intern_tag(
        invocation.context,
        invocation.code_block,
        0,
        invocation.iteration,
    )
    at_statement = restored_base.at_statement
    return [Send(at_statement(s), p, value) for s, p in _dest_pairs(dests)]


def _call(program, instruction, tag, operands):
    if instruction.target_block is not None:
        callee_name = instruction.target_block
        args = operands
    else:
        callee_value = operands[0]
        if isinstance(callee_value, FunctionRef):
            callee_name = callee_value.block
        elif isinstance(callee_value, str):
            callee_name = callee_value
        else:
            raise MachineError(
                f"CALL at {tag!r}: operand 0 is {callee_value!r}, "
                "not a procedure value"
            )
        args = operands[1:]
    callee = program.block(callee_name)
    if callee.kind != CodeBlock.PROCEDURE:
        raise MachineError(f"CALL at {tag!r}: {callee_name!r} is not a procedure")
    if len(args) != callee.num_params:
        raise MachineError(
            f"CALL at {tag!r}: {callee_name!r} takes {callee.num_params} "
            f"arguments, got {len(args)}"
        )
    site = instruction.site if instruction.site is not None else instruction.statement
    sends = []
    for index, arg in enumerate(args):
        for d in callee.param_targets[index]:
            sends.append(
                Send(tag.enter(site, callee_name, d.statement), d.port, arg)
            )
    continuation = Continuation(
        context=tag.context,
        code_block=tag.code_block,
        iteration=tag.iteration,
        dests=instruction.dests,
    )
    sends.append(
        Send(
            tag.enter(site, callee_name, callee.return_statement),
            1,
            continuation,
        )
    )
    return sends


def _return(value, continuation, tag):
    if not isinstance(continuation, Continuation):
        raise MachineError(
            f"RETURN at {tag!r}: port 1 carried {continuation!r}, "
            "not a continuation"
        )
    if continuation.halt:
        return [ProgramResult(value)]
    return [Send(t, port, value) for t, port in continuation.return_tags()]
