"""The untimed reference interpreter (the "U-interpreter", ref [1]).

This engine defines the *semantics* of a program: unbounded processors,
every instruction takes one logical step, tokens are matched by tag, and
I-structure storage is a single flat heap.  The timed multi-PE machine in
:mod:`repro.dataflow.machine` must produce exactly the same answers; tests
cross-check the two.

Besides the answer, the interpreter computes the program's *ideal
parallelism profile*: each token is timestamped with the logical step at
which its value could first exist, so ``parallelism_profile`` reports how
many instructions could fire at each step given infinitely many PEs, and
``critical_path`` is the data-dependency depth of the whole computation.
This is the quantity the paper appeals to when it says latency can be
tolerated "given that the program being executed is sufficiently parallel"
(§2.3).
"""

from collections import deque

from ..common.errors import DeadlockError, MachineError
from ..common.stats import Counter
from ..graph.opcodes import OPCODE_CLASS
from ..istructure.heap import Allocator
from ..istructure.store import DEFERRED, IStructureModule
from .exec_core import (
    ProgramResult,
    Send,
    StructureAlloc,
    StructureRead,
    StructureWrite,
    assemble_operands,
    execute,
)
from .tags import Tag, reset_intern_table
from .values import Continuation

__all__ = ["Interpreter", "run_program"]


class Interpreter:
    """Executes one program invocation on the abstract dataflow model."""

    def __init__(self, program):
        self.program = program
        self.heap = IStructureModule("heap")
        self.allocator = Allocator()
        self.counters = Counter()
        #: logical step -> number of instructions that fired at that step
        self.parallelism_profile = {}
        self._waiting = {}
        self._worklist = deque()
        self._write_times = {}
        self.result = None
        self.result_time = None
        self._finished = False
        self._started = False

    # ------------------------------------------------------------------
    def run(self, *args, max_steps=10_000_000):
        """Invoke the entry procedure with ``args``; return its result.

        An Interpreter instance is single-use: its heap, profile and
        counters describe exactly one invocation.
        """
        if self._started:
            raise MachineError(
                "Interpreter instances are single-use; create a new one"
            )
        self._started = True
        reset_intern_table()  # run-boundary eviction, never mid-run
        entry = self.program.entry_block()
        if len(args) != entry.num_params:
            raise MachineError(
                f"entry block {entry.name!r} takes {entry.num_params} "
                f"arguments, got {len(args)}"
            )
        for index, arg in enumerate(args):
            for dest in entry.param_targets[index]:
                tag = Tag(None, entry.name, dest.statement, 1)
                self._inject(tag, dest.port, arg, 0)
        halt_tag = Tag(None, entry.name, entry.return_statement, 1)
        self._inject(halt_tag, 1, Continuation.HALT, 0)

        steps = 0
        while self._worklist:
            steps += 1
            if steps > max_steps:
                raise MachineError(
                    f"interpreter exceeded {max_steps} token deliveries; "
                    "livelock suspected"
                )
            tag, port, value, ts = self._worklist.popleft()
            self._deliver(tag, port, value, ts)

        if not self._finished:
            pending = self.heap.pending_cells()
            raise DeadlockError(
                "program quiesced without returning a result; "
                f"{self.heap.pending_reads()} deferred read(s) outstanding, "
                f"{len(self._waiting)} partially matched activit(ies)",
                pending=pending,
            )
        self.counters.add("dangling_reads", self.heap.pending_reads())
        return self.result

    # ------------------------------------------------------------------
    @property
    def critical_path(self):
        """Data-dependency depth (logical steps) of the computation."""
        return max(self.parallelism_profile) if self.parallelism_profile else 0

    @property
    def instructions_executed(self):
        return sum(self.parallelism_profile.values())

    def average_parallelism(self):
        """Instructions executed divided by critical path length."""
        depth = self.critical_path
        return self.instructions_executed / depth if depth else 0.0

    # ------------------------------------------------------------------
    def _inject(self, tag, port, value, ts):
        self._worklist.append((tag, port, value, ts))

    def _deliver(self, tag, port, value, ts):
        instruction = self.program.instruction(tag.code_block, tag.statement)
        nt = instruction.nt
        if nt == 1:
            self._fire(instruction, tag, {port: value}, ts)
            return
        slot = self._waiting.setdefault(tag, {})
        if port in slot:
            raise MachineError(
                f"duplicate token at {tag!r} port {port}: graph is "
                "nondeterministic or malformed"
            )
        slot[port] = (value, ts)
        if len(slot) == nt:
            del self._waiting[tag]
            by_port = {p: v for p, (v, _) in slot.items()}
            fire_ts = max(t for _, t in slot.values())
            self._fire(instruction, tag, by_port, fire_ts)

    def _fire(self, instruction, tag, by_port, ts):
        operands = assemble_operands(instruction, by_port)
        effects = execute(self.program, instruction, tag, operands)
        done = ts + 1
        self.parallelism_profile[done] = self.parallelism_profile.get(done, 0) + 1
        self.counters.add("executed")
        self.counters.add(f"class_{OPCODE_CLASS[instruction.opcode].value}")
        for effect in effects:
            self._apply(effect, done)

    def _apply(self, effect, ts):
        if isinstance(effect, Send):
            self._inject(effect.tag, effect.port, effect.value, ts)
        elif isinstance(effect, StructureRead):
            key = (effect.ref.sid, effect.index)
            for reply_tag, reply_port in effect.replies:
                value = self.heap.read(key, (reply_tag, reply_port, ts))
                if value is not DEFERRED:
                    reply_ts = max(ts, self._write_times.get(key, 0)) + 1
                    self._inject(reply_tag, reply_port, value, reply_ts)
        elif isinstance(effect, StructureWrite):
            key = (effect.ref.sid, effect.index)
            self._write_times[key] = ts
            drained = self.heap.write(key, effect.value)
            for reply_tag, reply_port, issue_ts in drained:
                reply_ts = max(issue_ts, ts) + 1
                self._inject(reply_tag, reply_port, effect.value, reply_ts)
        elif isinstance(effect, StructureAlloc):
            ref = self.allocator.allocate(effect.size)
            for reply_tag, reply_port in effect.replies:
                self._inject(reply_tag, reply_port, ref, ts + 1)
        elif isinstance(effect, ProgramResult):
            if self._finished:
                raise MachineError("program returned more than once")
            self.result = effect.value
            self.result_time = ts
            self._finished = True
        else:
            raise MachineError(f"unknown effect {effect!r}")


def run_program(program, *args, **kwargs):
    """One-shot convenience: interpret ``program`` on ``args``."""
    return Interpreter(program).run(*args, **kwargs)
