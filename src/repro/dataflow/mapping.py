"""Mapping activity names onto processing elements.

"Activity names, then, define an unbounded namespace.  Names in this space
are mapped dynamically into a finite namespace.  The activity name plus
some mapping information uniquely define the runtime tag and processing
element (PE) number" (§2.2.2).

The hash used here is *stable*: it does not depend on Python's per-process
string seeding, so a simulation is reproducible run to run.
"""

import zlib

__all__ = ["stable_tag_key", "HashMapping", "ByContextMapping"]


def _mix(h, value):
    return (h * 1000003 ^ value) & 0xFFFFFFFF


def stable_tag_key(tag):
    """A deterministic 32-bit key for a tag (recursing through contexts).

    The key is a pure function of the tag's structure, so it is memoized
    on the tag itself (``Tag._map_key``) — with interned tags the mapping
    policy pays the chain walk once per distinct activity name instead of
    once per routed token.
    """
    cached = getattr(tag, "_map_key", None)
    if cached is not None:
        return cached
    h = 0x811C9DC5
    node = tag
    while node is not None:
        h = _mix(h, zlib.crc32(node.code_block.encode("utf-8")))
        h = _mix(h, node.statement)
        h = _mix(h, node.iteration)
        node = node.context
    try:
        object.__setattr__(tag, "_map_key", h)
    except AttributeError:  # a non-Tag stand-in without the cache slot
        pass
    return h


class HashMapping:
    """Spread individual activities across all PEs by hashing the full tag.

    Maximizes load balance and exposes the most communication — the
    configuration that stresses latency tolerance hardest.
    """

    def __init__(self, n_pes):
        self.n_pes = n_pes

    def pe_of(self, tag):
        return stable_tag_key(tag) % self.n_pes

    def __repr__(self):
        return f"HashMapping(n_pes={self.n_pes})"


class ByContextMapping:
    """Keep each invocation context on one PE.

    All activities of one procedure call or loop context execute on the
    same PE, so only linkage (CALL/L) and structure traffic cross the
    network.  Loop iterations are spread by folding the iteration number
    in, giving the classic "unfold loops across PEs" behaviour.
    """

    def __init__(self, n_pes, spread_iterations=True):
        self.n_pes = n_pes
        self.spread_iterations = spread_iterations

    def pe_of(self, tag):
        context_key = stable_tag_key(tag.context) if tag.context else 0
        h = _mix(context_key, zlib.crc32(tag.code_block.encode("utf-8")))
        if self.spread_iterations:
            h = _mix(h, tag.iteration)
        return h % self.n_pes

    def __repr__(self):
        return (
            f"ByContextMapping(n_pes={self.n_pes}, "
            f"spread_iterations={self.spread_iterations})"
        )
