"""The multi-PE Tagged-Token Dataflow Machine (Fig 2-3).

``TaggedTokenMachine`` assembles N processing elements around a packet
network, loads a compiled program, injects the argument tokens and the
halt continuation, runs the event kernel to quiescence, and reports both
the answer and the measurements (per-unit utilizations, matching-store
occupancy, network latency, I-structure behaviour).

Termination follows the paper's definition — "a program is said to
terminate when no enabled instructions are left" (§2.2.2) — which in the
simulation is quiescence of the event queue.  Quiescing *without* having
produced a result is reported as deadlock, with the outstanding deferred
reads and unmatched tokens listed.
"""

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..common.batch import BatchPlane, FusedKind, resolve_exec_mode
from ..common.batch import np as batch_np
from ..common.errors import DeadlockError, MachineError
from ..common.simulator import CalendarSimulator, Simulator
from ..common.stats import Counter
from ..common.topology import MachineTopology, TopologyLink, TopologyUnit
from ..istructure.heap import StructureRef
from ..network.ideal import IdealNetwork
from ..faults import coerce_plan
from ..obs import MetricsRegistry, TraceBus
from .mapping import HashMapping
from .pe import ProcessingElement
from .tags import intern_tag, reset_intern_table
from .trace import TraceLog
from .token import Token, TokenKind
from .values import Continuation

__all__ = ["MachineConfig", "TaggedTokenMachine", "MachineResult",
           "ttda_topology"]


def ttda_topology(n_pes, network_latency=4.0):
    """The TTDA's partition graph: one unit per PE (its pipeline, match
    store, and I-structure bank all live PE-locally), fully connected
    through the packet network.  The network's fixed latency is every
    link's minimum delivery delay — the Chandy–Misra lookahead.  With a
    zero-latency network the links contract and the machine honestly
    refuses to shard."""
    if n_pes < 1:
        return None
    units = [TopologyUnit(name=f"pe{i}", kind="pe") for i in range(n_pes)]
    links = [
        TopologyLink(src=f"pe{i}", dst=f"pe{j}", lookahead=network_latency)
        for i in range(n_pes) for j in range(n_pes) if i != j
    ]
    return MachineTopology(units, links)


@dataclass
class MachineConfig:
    """Service times (cycles) and structural knobs of the machine."""

    n_pes: int = 4
    wm_time: float = 1.0  # waiting-matching probe
    #: Capacity of the waiting-matching associative memory, in tokens.
    #: None = unbounded (the paper's idealization).  When the store is
    #: over capacity, every probe pays ``wm_overflow_penalty`` extra
    #: cycles, modelling the overflow-to-backing-store mechanism a real
    #: finite associative memory needs.
    wm_capacity: int = None
    wm_overflow_penalty: float = 8.0
    fetch_time: float = 1.0  # instruction fetch
    alu_time: float = 1.0  # ALU operation
    output_time: float = 1.0  # output section, per produced token
    controller_time: float = 1.0  # PE controller service (allocation)
    is_read_time: float = 1.0  # I-structure read (as a normal memory)
    is_write_time: float = 2.0  # write: 2x, presence-bit prefetch (§2.1)
    local_loopback: bool = True  # PE-local tokens bypass the network
    trace: bool = False  # record a TraceLog of machine events
    #: A repro.obs.TraceBus to publish structured events to (JSONL or
    #: Chrome-trace sinks, say).  Independent of ``trace``: with both
    #: set, the TraceLog ring joins the same bus.
    trace_bus: Optional[TraceBus] = None
    network_factory: Optional[Callable] = None  # (sim, n_ports) -> Network
    mapping_factory: Optional[Callable] = None  # (n_pes) -> mapping policy
    network_latency: float = 4.0  # used by the default IdealNetwork
    #: A repro.faults.FaultPlan (or dict / JSON path); None (default)
    #: keeps every hot path at a single attribute check.
    fault_plan: object = None
    #: Kernel selection (None defers to ``REPRO_SIM_KERNEL`` /
    #: ``REPRO_SIM_SHARDS``); ``sim_shards`` > 1 partitions the PEs
    #: across the sharded parallel kernel using :func:`ttda_topology`.
    sim_kernel: Optional[str] = None
    sim_shards: Optional[int] = None
    #: Execution mode: ``"event"`` (reference, the default) or
    #: ``"batch"`` — drain homogeneous same-instant work into numpy
    #: structure-of-arrays kernels.  None defers to ``REPRO_EXEC_MODE``.
    exec_mode: Optional[str] = None

    def make_network(self, sim):
        if self.network_factory is not None:
            return self.network_factory(sim, self.n_pes)
        return IdealNetwork(sim, self.n_pes, latency=self.network_latency)

    def make_mapping(self):
        if self.mapping_factory is not None:
            return self.mapping_factory(self.n_pes)
        return HashMapping(self.n_pes)


@dataclass
class MachineResult:
    """Everything a run produces."""

    value: object
    time: float  # cycle at which RETURN consumed the halt continuation
    drain_time: float  # cycle at which the machine fully quiesced
    instructions: int
    alu_utilizations: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)

    @property
    def mean_alu_utilization(self):
        if not self.alu_utilizations:
            return 0.0
        return sum(self.alu_utilizations) / len(self.alu_utilizations)

    @property
    def mips_per_pe(self):
        """Instructions per cycle per PE (the ALU-utilization figure of
        merit of §1.2, in instruction terms)."""
        if self.time <= 0 or not self.alu_utilizations:
            return 0.0
        return self.instructions / self.time / len(self.alu_utilizations)


class TaggedTokenMachine:
    """N processing elements + network + distributed I-structure storage."""

    def __init__(self, program, config=None):
        self.program = program
        self.config = config if config is not None else MachineConfig()
        self.sim = Simulator(kernel=self.config.sim_kernel,
                             shards=self.config.sim_shards)
        self.n_pes = self.config.n_pes
        if self.n_pes < 1:
            raise MachineError("machine needs at least one PE")
        self.mapping = self.config.make_mapping()
        self.network = self.config.make_network(self.sim)
        if self.network.n_ports < self.n_pes:
            raise MachineError(
                f"network has {self.network.n_ports} ports but machine "
                f"has {self.n_pes} PEs"
            )
        bus = self.config.trace_bus
        if bus is None and self.config.trace:
            bus = TraceBus()
        self._bus = bus
        # Causal provenance: only link events into a DAG when the bus was
        # built with provenance=True (the ``repro profile`` path).
        self._provenance = bus is not None and bus.provenance
        self.trace = TraceLog(bus=bus) if self.config.trace else None
        if bus is not None:
            self.sim.attach_bus(bus)
            attach = getattr(self.network, "attach_bus", None)
            if attach is not None:
                attach(bus, source="net")
        # Fault injection: one shared injector per machine instance (PE
        # stalls/crashes, I-structure bank faults, network spikes), built
        # before the PEs so they can capture the reference.
        plan = coerce_plan(self.config.fault_plan)
        self.faults = (
            plan.injector(bus=bus) if plan is not None and plan.enabled
            else None
        )
        if self.faults is not None:
            self.network.faults = self.faults
        # (code_block, statement) -> (instruction, nt), shared by every PE
        # and the injection path.  The program is frozen once the machine
        # runs, so the memoization is safe for the machine's lifetime.
        self._instr_cache = {}
        self.pes = [ProcessingElement(self, i, self.config) for i in range(self.n_pes)]
        for pe in self.pes:
            self.network.attach(pe.pe, self._network_delivery, owner=pe)
        self._configure_shards()
        # Batch execution mode: attach the plane whenever batch was
        # requested on the calendar kernel (so kernel_stats reports the
        # mode honestly), but register kinds only when no fault injector
        # or trace bus needs per-event interposition.
        self.exec_mode = resolve_exec_mode(self.config.exec_mode)
        self._plane = None
        if (self.exec_mode == "batch" and batch_np is not None
                and isinstance(self.sim, CalendarSimulator)):
            from ..istructure.controller import IStructureBatchKind
            from .pe import AluBatchKind, WaitingMatchKind

            plane = self._plane = self.sim.attach_batch_plane(BatchPlane())
            if self._bus is None and self.faults is None:
                wm_kind = WaitingMatchKind(self)
                alu_kind = AluBatchKind(self)
                isc_kind = IStructureBatchKind(self.sim)
                fused = FusedKind()
                for pe in self.pes:
                    plane.register(pe.waiting_matching._complete, wm_kind)
                    plane.register(pe.alu._complete, alu_kind)
                    plane.register(pe.istructure._complete, isc_kind)
                    # Fetch/output/controller completions have no SoA
                    # compute to lift, but they still batch as fused
                    # dispatch runs.
                    plane.register(pe.fetch._complete, fused)
                    plane.register(pe.output._complete, fused)
                    plane.register(pe.controller._complete, fused)
                    plane.register(pe.receive, fused)
                # Network deliveries are the bulk of the calendar's
                # entries; the whole wave arriving at one instant fuses
                # into a single dispatch run.
                plane.register(self.network._deliver, fused)
        self.counters = Counter()
        self._next_sid = 0
        self._result = None
        self._result_time = None
        self._finished = False
        self._started = False

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------
    def run(self, *args, max_events=None, drain=True):
        """Invoke the entry procedure on ``args``; returns MachineResult.

        A machine instance is single-use: its clocks, stores and counters
        describe exactly one invocation.
        """
        if self._started:
            raise MachineError(
                "TaggedTokenMachine instances are single-use; create a new one"
            )
        self._started = True
        # Run-boundary eviction point for the tag intern table: never
        # clear it mid-run (token identity would silently fork).
        reset_intern_table()
        entry = self.program.entry_block()
        if len(args) != entry.num_params:
            raise MachineError(
                f"entry block {entry.name!r} takes {entry.num_params} "
                f"arguments, got {len(args)}"
            )
        for index, arg in enumerate(args):
            for dest in entry.param_targets[index]:
                tag = intern_tag(None, entry.name, dest.statement, 1)
                self._inject(tag, dest.port, arg)
        halt_tag = intern_tag(None, entry.name, entry.return_statement, 1)
        self._inject(halt_tag, 1, Continuation.HALT)

        self.sim.run(max_events=max_events)
        if not self._finished:
            raise DeadlockError(
                "machine quiesced without a result; "
                f"{self.pending_reads()} deferred read(s), "
                f"{self.unmatched_tokens()} unmatched token(s)",
                pending=[
                    tag for pe in self.pes for tag in pe._match_store
                ][:16],
            )
        merged = self.counters.as_dict()
        for pe in self.pes:
            for key, value in pe.counters.as_dict().items():
                merged[key] = merged.get(key, 0) + value
        if self.faults is not None:
            for key, value in self.faults.counters.as_dict().items():
                merged[key] = merged.get(key, 0) + value
        return MachineResult(
            value=self._result,
            time=self._result_time,
            drain_time=self.sim.now,
            instructions=self.instructions_executed(),
            alu_utilizations=[
                pe.alu_utilization(until=self._result_time) for pe in self.pes
            ],
            counters=merged,
        )

    def _configure_shards(self):
        """Install the PE partition on a sharded kernel (no-op on serial
        kernels and single-shard runs)."""
        configure = getattr(self.sim, "configure_shards", None)
        if configure is None or getattr(self.sim, "shards", 1) < 2:
            return
        if self.config.network_factory is not None:
            raise MachineError(
                "the parallel kernel derives its lookahead from the "
                "default IdealNetwork's fixed latency; a custom "
                "network_factory has no declared minimum latency — run "
                "it on the serial kernel"
            )
        topo = ttda_topology(self.n_pes, self.config.network_latency)
        assignment = topo.partition(self.sim.shards)
        configure(
            [(self.pes[i], assignment[i]) for i in range(self.n_pes)],
            topo.shard_links(assignment),
        )

    def _inject(self, tag, port, value):
        key = (tag.code_block, tag.statement)
        entry = self._instr_cache.get(key)
        if entry is None:
            instruction = self.program.instruction(*key)
            entry = self._instr_cache[key] = (instruction, instruction.nt)
        token = Token(tag, port, value, TokenKind.NORMAL, nt=entry[1])
        pe = self.mapping.pe_of(tag)
        target = self.pes[pe]
        self.sim.post_to(target, 0, target.receive, token.routed_to(pe))

    def _trace_event(self, pe, kind, detail, **fields):
        # Call sites guard on ``self._bus is not None and bus.enabled``
        # before building detail strings, so a machine without (active)
        # observability pays only that check.  Returns the event's eid in
        # provenance mode (None otherwise) so emitters can thread causes.
        bus = self._bus
        if bus is not None:
            return bus.emit_id(self.sim.now, pe, kind, detail, **fields)
        return None

    def _program_result(self, value, cause=None):
        if self._finished:
            raise MachineError("program returned more than once")
        self._result = value
        self._result_time = self.sim.now
        self._finished = True
        bus = self._bus
        if bus is not None and bus.enabled:
            self._trace_event("-", "result", repr(value), parent=cause)

    # ------------------------------------------------------------------
    # Interconnect
    # ------------------------------------------------------------------
    def _transmit(self, src_pe, token):
        bus = self._bus
        if token.pe == src_pe and self.config.local_loopback:
            self.counters.add("tokens_local")
            if bus is not None and bus.enabled:
                eid = self._trace_event(src_pe, "route", "local", local=True,
                                        parent=token.cause)
                if eid is not None:
                    object.__setattr__(token, "cause", eid)
            self.pes[src_pe].receive(token)
        else:
            self.counters.add("tokens_network")
            cause = token.cause
            if bus is not None and bus.enabled:
                eid = self._trace_event(src_pe, "route", f"->pe{token.pe}",
                                        local=False, parent=token.cause)
                if eid is not None:
                    cause = eid
            self.network.send(src_pe, token.pe, token, cause=cause)

    def _network_delivery(self, packet):
        token = packet.payload
        if self._provenance and packet.cause is not None:
            # The delivered token's history now runs through the network
            # events (net_inject -> net_deliver) the packet accumulated.
            object.__setattr__(token, "cause", packet.cause)
        self.pes[packet.dst].receive(token)

    # ------------------------------------------------------------------
    # Distributed structure allocation: PE-local id generators that can
    # never collide (PE k hands out sids congruent to k mod n_pes).
    # ------------------------------------------------------------------
    def allocate_structure(self, size, on_pe=0):
        sid = self._next_sid * self.n_pes + on_pe
        self._next_sid += 1
        self.counters.add("structures_allocated")
        return StructureRef(sid=sid, size=size)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def metrics_registry(self):
        """Every instrument of this machine under hierarchical names
        (``pe0.alu.busy``, ``net.latency.mean``, ...).  Built on demand
        from live references — costs nothing until ``snapshot()``."""
        registry = MetricsRegistry()
        registry.register("machine", self.counters)
        registry.register("sim.events_fired", lambda: self.sim.events_fired)
        registry.register("sim.time", lambda: self.sim.now)
        for pe in self.pes:
            prefix = f"pe{pe.pe}"
            registry.register(prefix, pe.counters)
            registry.register(f"{prefix}.wm", pe.waiting_matching)
            registry.register(f"{prefix}.fetch", pe.fetch)
            registry.register(f"{prefix}.alu", pe.alu)
            registry.register(f"{prefix}.out", pe.output)
            registry.register(f"{prefix}.ctrl", pe.controller)
            registry.register(f"{prefix}.match_occupancy", pe.match_occupancy)
            registry.register(f"{prefix}.isc", pe.istructure.counters)
            registry.register(f"{prefix}.isc.queue", pe.istructure.queue_depth)
            registry.register(f"{prefix}.isc.unit", pe.istructure.utilization)
        register_net = getattr(self.network, "register_metrics", None)
        if register_net is not None:
            register_net(registry, prefix="net")
        return registry

    def metrics_snapshot(self):
        """One flat dict of every metric at the current simulated time."""
        return self.metrics_registry().snapshot(now=self.sim.now)

    def instructions_executed(self):
        return sum(pe.counters["instructions"] for pe in self.pes)

    def pending_reads(self):
        return sum(pe.istructure.pending_reads for pe in self.pes)

    def unmatched_tokens(self):
        return sum(pe._waiting_tokens() for pe in self.pes)

    def matching_store_occupancy(self):
        """Mean and peak waiting-token count across PEs (for E12)."""
        end = self.sim.now
        means = [pe.match_occupancy.mean(end_time=end) for pe in self.pes]
        peaks = [pe.match_occupancy.max for pe in self.pes]
        return sum(means), max(peaks) if peaks else 0

    def __repr__(self):
        return (
            f"<TaggedTokenMachine pes={self.n_pes} t={self.sim.now} "
            f"instructions={self.instructions_executed()}>"
        )
