"""One data flow processing element (Fig 2-4).

The PE is a pipeline of four units, each modelled as a FIFO server with a
configurable service time:

* **waiting–matching section** — an associative store; d=0 tokens that
  "require partners (nt >= 2)" probe it, and "when a match is expected but
  not found, the token remains in the waiting-matching unit's associative
  memory until its partner arrives";
* **instruction fetch** — "looks up the operation code and other
  information associated with the token-carried names" from program
  memory; also "directly receives d=0 tokens which require no partners
  (nt=1)";
* **ALU** — executes the enabled instruction ("no other information is
  needed to carry out the operation save that which is in this enabled
  instruction packet");
* **output section** — builds result tokens ("we build this output token
  by computing a new tag, using the old tag along with information stored
  in the instruction itself"), computes the destination PE via the mapping
  policy, and hands remote tokens to the network.

Each PE also hosts an I-structure controller (d=1 traffic) and a PE
controller (d=2 traffic — here, structure allocation).
"""

from ..common.batch import BatchKind, np
from ..common.errors import MachineError
from ..common.queueing import FifoServer
from ..common.stats import Counter, TimeWeighted
from ..graph.opcodes import OPCODE_CLASS, PURE_BINARY
from ..istructure.controller import IStructureController, ReadRequest, WriteRequest
from ..istructure.heap import interleave_home
from .exec_core import (
    BATCH_BOOL_RESULT,
    BATCH_INT_BINARY,
    ProgramResult,
    Send,
    StructureAlloc,
    StructureRead,
    StructureWrite,
    assemble_operands,
    batched_effects,
    execute,
)
from .token import Token, TokenKind

__all__ = ["ProcessingElement", "AllocRequest",
           "WaitingMatchKind", "AluBatchKind"]


class AllocRequest:
    """Payload of a d=2 token: allocate ``size`` cells, reply to ``replies``."""

    __slots__ = ("size", "replies", "cause")

    def __init__(self, size, replies, cause=None):
        self.size = size
        self.replies = replies
        self.cause = cause  # provenance eid of the requesting event


class ProcessingElement:
    """One PE of the tagged-token machine."""

    __slots__ = (
        "machine", "pe", "config", "sim",
        "waiting_matching", "fetch", "alu", "output", "controller",
        "istructure", "_match_store", "_match_causes", "match_occupancy",
        "counters", "_waiting", "_instr_cache",
        "_wm_time", "_wm_capacity", "_wm_penalty",
        "_faults", "_alu_time",
    )

    def __init__(self, machine, pe_number, config):
        self.machine = machine
        self.pe = pe_number
        self.config = config
        sim = machine.sim
        self.sim = sim
        name = f"pe{pe_number}"
        self.waiting_matching = FifoServer(sim, config.wm_time, f"{name}.wm")
        self.fetch = FifoServer(sim, config.fetch_time, f"{name}.fetch")
        self.alu = FifoServer(sim, config.alu_time, f"{name}.alu")
        self.output = FifoServer(sim, config.output_time, f"{name}.out")
        self.controller = FifoServer(sim, config.controller_time, f"{name}.ctrl")
        self.istructure = IStructureController(
            sim,
            deliver=self._istructure_reply,
            name=f"{name}.isc",
            read_cycles=config.is_read_time,
            write_cycles=config.is_write_time,
            trace=self._isc_trace if machine._bus is not None else None,
            bus=machine._bus,
            faults=machine.faults,
        )
        self._faults = machine.faults
        self._alu_time = config.alu_time
        self._match_store = {}
        # Provenance: park eids awaiting their match, keyed by tag.
        self._match_causes = {}
        self.match_occupancy = TimeWeighted()
        self.counters = Counter()
        # Parked-token count, maintained incrementally (+1 on park,
        # -(nt-1) on match) so capacity checks and occupancy samples are
        # O(1) instead of a sum over the associative store.
        self._waiting = 0
        # (code_block, statement) -> (instruction, nt), shared machine-wide.
        # ``Instruction.nt`` is a recomputed property and the program is
        # frozen once the machine runs, so both are safe to memoize.
        self._instr_cache = machine._instr_cache
        self._wm_time = config.wm_time
        self._wm_capacity = config.wm_capacity
        self._wm_penalty = config.wm_overflow_penalty

    # ------------------------------------------------------------------
    # Token arrival and classification (the "input" of Fig 2-4)
    # ------------------------------------------------------------------
    def receive(self, token):
        """A token arrived at this PE (from the network or locally)."""
        self.counters.add("tokens_received")
        if token.kind is TokenKind.NORMAL:
            if token.needs_partner:
                service = self._wm_time
                if (
                    self._wm_capacity is not None
                    and self._waiting >= self._wm_capacity
                ):
                    # Finite associative memory: probes beyond capacity
                    # spill to the (slow) overflow store.
                    service += self._wm_penalty
                    self.counters.add("wm_overflows")
                self.waiting_matching.submit(token, self._match,
                                             service_time=service)
            else:
                self.fetch.submit(
                    (token.tag, {token.port: token.data}, token.cause),
                    self._fetched,
                )
        elif token.kind is TokenKind.STRUCTURE:
            if self.machine._provenance:
                # The request predates any route/network events the token
                # accumulated in flight; re-link it to the freshest one.
                token.data.cause = token.cause
            self.istructure.submit(token.data)
        elif token.kind is TokenKind.CONTROL:
            if self.machine._provenance:
                token.data.cause = token.cause
            self.controller.submit(token.data, self._control)
        else:
            raise MachineError(f"unclassifiable token {token!r}")

    # ------------------------------------------------------------------
    # Waiting-matching section
    # ------------------------------------------------------------------
    def _match(self, token):
        store = self._match_store
        slot = store.get(token.tag)
        if slot is None:
            slot = store[token.tag] = {}
        if token.port in slot:
            raise MachineError(
                f"pe{self.pe}: duplicate token at {token.tag!r} "
                f"port {token.port}"
            )
        slot[token.port] = token.data
        machine = self.machine
        bus = machine._bus
        now = self.sim._now
        if len(slot) == token.nt:
            del store[token.tag]
            self.counters.add("matches")
            waiting = self._waiting = self._waiting - (token.nt - 1)
            self.match_occupancy.update(now, waiting)
            cause = token.cause
            if bus is not None and bus.enabled:
                # The match joins this token's chain (parent) with the
                # park events of the operands that arrived earlier.
                eid = machine._trace_event(
                    self.pe, "match", repr(token.tag),
                    waiting=waiting,
                    parent=token.cause,
                    joins=self._match_causes.pop(token.tag, None),
                )
                if eid is not None:
                    cause = eid
            elif self._match_causes:
                self._match_causes.pop(token.tag, None)
            self.fetch.submit((token.tag, slot, cause), self._fetched)
        else:
            self.counters.add("tokens_parked")
            waiting = self._waiting = self._waiting + 1
            self.match_occupancy.update(now, waiting)
            if bus is not None and bus.enabled:
                eid = machine._trace_event(
                    self.pe, "park", f"{token.tag!r} p{token.port}",
                    waiting=waiting, parent=token.cause,
                )
                if eid is not None:
                    self._match_causes.setdefault(token.tag, []).append(eid)

    def _waiting_tokens(self):
        return self._waiting

    # ------------------------------------------------------------------
    # Instruction fetch and ALU
    # ------------------------------------------------------------------
    def _instruction_entry(self, code_block, statement):
        """The (instruction, nt) pair for one statement, memoized."""
        key = (code_block, statement)
        entry = self._instr_cache.get(key)
        if entry is None:
            instruction = self.machine.program.instruction(code_block, statement)
            entry = self._instr_cache[key] = (instruction, instruction.nt)
        return entry

    def _fetched(self, enabled):
        if self._faults is not None:
            self._fetched_faulty(enabled)
            return
        tag, by_port, cause = enabled
        entry = self._instr_cache.get((tag.code_block, tag.statement))
        if entry is None:
            entry = self._instruction_entry(tag.code_block, tag.statement)
        self.alu.submit((entry[0], tag, by_port, cause), self._executed)

    def _fetched_faulty(self, enabled):
        """The :meth:`_fetched` path with PE fault injection.

        ``enabled`` grows a fourth element (the re-fire attempt count)
        only on the crash-recovery path, so the common case stays the
        same 3-tuple the fault-free pipeline passes around.
        """
        tag, by_port, cause = enabled[0], enabled[1], enabled[2]
        attempt = enabled[3] if len(enabled) > 3 else 0
        verdict = self._faults.pe_fault(
            self.sim, f"pe{self.pe}", attempt=attempt, cause=cause
        )
        entry = self._instr_cache.get((tag.code_block, tag.statement))
        if entry is None:
            entry = self._instruction_entry(tag.code_block, tag.statement)
        if verdict is None:
            self.alu.submit((entry[0], tag, by_port, cause), self._executed)
            return
        kind, cycles = verdict
        if kind == "crash":
            # The enabled instruction is dropped before execution and
            # re-fired after backoff; no effects were emitted, so the
            # retry is exact.
            self.counters.add("fault_refires")
            self.sim.post(
                cycles, self._fetched, (tag, by_port, cause, attempt + 1)
            )
            return
        # Stall: the instruction occupies the ALU longer.
        self.counters.add("fault_stalls")
        self.alu.submit((entry[0], tag, by_port, cause), self._executed,
                        service_time=self._alu_time + cycles)

    def _executed(self, work):
        instruction, tag, by_port, cause = work
        machine = self.machine
        operands = assemble_operands(instruction, by_port)
        effects = execute(machine.program, instruction, tag, operands)
        counters = self.counters
        counters.add("instructions")
        counters.add(f"class_{OPCODE_CLASS[instruction.opcode].value}")
        bus = machine._bus
        if bus is not None and bus.enabled:
            # dur = the ALU slice just finished; the Chrome exporter
            # renders it as pipeline-stage occupancy on this PE's track.
            eid = machine._trace_event(
                self.pe, "exec", f"{tag!r} {instruction.opcode.value}",
                op=instruction.opcode.value, dur=self.config.alu_time,
                parent=cause,
            )
            if eid is not None:
                cause = eid
        emit = self._emit
        for effect in effects:
            emit(effect, tag, cause)

    def _emit(self, effect, tag, cause=None):
        if isinstance(effect, Send):
            etag = effect.tag
            entry = self._instr_cache.get((etag.code_block, etag.statement))
            if entry is None:
                entry = self._instruction_entry(etag.code_block, etag.statement)
            token = Token(etag, effect.port, effect.value,
                          TokenKind.NORMAL, nt=entry[1], cause=cause)
            self.output.submit(token, self._route)
        elif isinstance(effect, StructureRead):
            for reply_tag, reply_port in effect.replies:
                home = interleave_home(effect.ref, effect.index,
                                       self.machine.n_pes)
                request = ReadRequest(
                    key=(effect.ref.sid, effect.index),
                    reply=(reply_tag, reply_port),
                    cause=cause,
                )
                token = Token(tag, 0, request, TokenKind.STRUCTURE, pe=home,
                              cause=cause)
                self.output.submit(token, self._route)
        elif isinstance(effect, StructureWrite):
            home = interleave_home(effect.ref, effect.index, self.machine.n_pes)
            request = WriteRequest(
                key=(effect.ref.sid, effect.index), value=effect.value,
                cause=cause,
            )
            token = Token(tag, 0, request, TokenKind.STRUCTURE, pe=home,
                          cause=cause)
            self.output.submit(token, self._route)
        elif isinstance(effect, StructureAlloc):
            request = AllocRequest(effect.size, effect.replies, cause=cause)
            token = Token(tag, 0, request, TokenKind.CONTROL, pe=self.pe,
                          cause=cause)
            self.output.submit(token, self._route)
        elif isinstance(effect, ProgramResult):
            self.machine._program_result(effect.value, cause)
        else:
            raise MachineError(f"unknown effect {effect!r}")

    # ------------------------------------------------------------------
    # Output section: tag -> PE mapping and routing
    # ------------------------------------------------------------------
    def _route(self, token):
        machine = self.machine
        if token.pe is None:
            token = token.routed_to(machine.mapping.pe_of(token.tag))
        self.counters.add("tokens_sent")
        machine._transmit(self.pe, token)

    # ------------------------------------------------------------------
    # PE controller (d=2): structure allocation
    # ------------------------------------------------------------------
    def _control(self, request):
        if isinstance(request, AllocRequest):
            ref = self.machine.allocate_structure(request.size, on_pe=self.pe)
            cause = request.cause
            bus = self.machine._bus
            if bus is not None and bus.enabled:
                eid = self.machine._trace_event(self.pe, "alloc", repr(ref),
                                                parent=request.cause)
                if eid is not None:
                    cause = eid
            for reply_tag, reply_port in request.replies:
                entry = self._instruction_entry(
                    reply_tag.code_block, reply_tag.statement
                )
                token = Token(reply_tag, reply_port, ref, TokenKind.NORMAL,
                              nt=entry[1], cause=cause)
                self.output.submit(token, self._route)
        else:
            raise MachineError(f"pe{self.pe}: unknown control request {request!r}")

    # ------------------------------------------------------------------
    # I-structure reply path
    # ------------------------------------------------------------------
    def _isc_trace(self, kind, detail, **fields):
        return self.machine._trace_event(self.pe, kind, detail, **fields)

    def _istructure_reply(self, reply, value):
        reply_tag, reply_port = reply
        entry = self._instr_cache.get((reply_tag.code_block, reply_tag.statement))
        if entry is None:
            entry = self._instruction_entry(reply_tag.code_block,
                                            reply_tag.statement)
        # The controller sets reply_cause synchronously right before each
        # deliver call, so this read is race-free under the event kernel.
        token = Token(reply_tag, reply_port, value, TokenKind.NORMAL,
                      nt=entry[1], cause=self.istructure.reply_cause)
        self.output.submit(token, self._route)

    # ------------------------------------------------------------------
    def alu_utilization(self, until=None):
        now = self.machine.sim.now if until is None else until
        return self.alu.utilization.utilization(now)

    def __repr__(self):
        return (
            f"<PE {self.pe} instructions={self.counters['instructions']} "
            f"waiting={self._waiting_tokens()}>"
        )


# ----------------------------------------------------------------------
# Batch execution kinds (exec_mode="batch")
# ----------------------------------------------------------------------
# Registered by TaggedTokenMachine against each PE's waiting-matching and
# ALU server completions when no fault plan or trace bus needs per-event
# interposition.  Each kind's ``apply_run`` replays the exact bodies of
# FifoServer._complete plus the PE handler at each entry's bucket
# position, substituting vectorized results for the scalar compute, so
# the run is byte-identical to the event path by construction.  One
# server completes at most once per bucket segment, so a run spans
# distinct PEs and the SoA pre-pass can never observe mid-run mutations.

#: Sentinel for "no precomputed result; replay the scalar handler".
_MISS = object()

if np is not None:
    #: Opcode -> numpy ufunc for the int-vectorizable pure binaries.
    _NP_BINARY = {
        "add": np.add, "sub": np.subtract, "mul": np.multiply,
        "min": np.minimum, "max": np.maximum,
        "lt": np.less, "le": np.less_equal,
        "gt": np.greater, "ge": np.greater_equal,
        "eq": np.equal, "ne": np.not_equal,
    }
else:  # pragma: no cover - numpy is baked into the environment
    _NP_BINARY = {}

#: Operand magnitude bound under which int64 vector arithmetic cannot
#: overflow (|a op b| < 2**63 for ADD/SUB/MUL) and int<->int64 round
#: trips are exact.
_INT_BOUND = 1 << 31


class WaitingMatchKind(BatchKind):
    """SoA waiting-matching: tag-keyed match over int arrays.

    Tokens in the run are grouped by ``(pe, tag)`` in int64 arrays
    (interned tags carry a small sequential ``_tid``).  A group of two
    dyadic tokens whose partner arrived *in the same run* matches
    entirely in-array: the associative store is never probed or written
    for the pair (the event path inserts then deletes the slot — net
    identical).  Everything else (singles probing the store, nt > 2,
    uninterned tags, duplicate ports) replays the scalar ``_match``.
    """

    name = "wm_match"
    min_run = 8

    def __init__(self, machine):
        self.sim = machine.sim

    def apply_run(self, bucket, start, end):
        width = end - start
        tokens = [None] * width
        dones = [None] * width
        keys = [0] * width
        seen = set()
        collided = False
        for j in range(width):
            fn, (token, on_done) = bucket[start + j]
            tokens[j] = token
            dones[j] = on_done
            tid = token.tag._tid
            if tid < 0:
                keys[j] = -1 - j  # unique key: never pairs in-array
            else:
                key = keys[j] = (on_done.__self__.pe << 18) | tid
                if key in seen:
                    collided = True
                else:
                    seen.add(key)
        outcome = partner = None
        if collided:
            # In-array pair detection: stable sort by key; adjacent equal
            # keys with exactly two members are candidate pairs.  On the
            # registry machines this never triggers — one waiting-matching
            # server per PE serializes same-tag probes, so a run cannot
            # hold both halves of a pair — which is why the numpy grouping
            # is gated behind the python collision scan above.
            outcome = [0] * width  # 0 scalar / 1 park / 2 match
            partner = [0] * width
            akeys = np.array(keys, dtype=np.int64)
            order = np.argsort(akeys, kind="stable")
            skeys = akeys[order]
            boundary = np.empty(width, dtype=bool)
            boundary[0] = True
            np.not_equal(skeys[1:], skeys[:-1], out=boundary[1:])
            starts = np.flatnonzero(boundary)
            counts = np.diff(np.append(starts, width))
            for g in np.flatnonzero(counts == 2):
                s = starts[g]
                j1 = int(order[s])
                j2 = int(order[s + 1])
                t1, t2 = tokens[j1], tokens[j2]
                if t1.nt != 2 or t2.nt != 2:
                    continue
                if t1.port == t2.port or keys[j1] < 0:
                    continue
                if dones[j1].__self__._match_store.get(t1.tag) is not None:
                    continue
                outcome[j1] = 1
                outcome[j2] = 2
                partner[j2] = j1
        now = self.sim._now
        for j in range(width):
            fn = bucket[start + j][0]
            server = fn.__self__
            server.utilization.end(now)
            server._busy = False
            server.items_served += 1
            token = tokens[j]
            on_done = dones[j]
            o = 0 if outcome is None else outcome[j]
            if o == 0:
                on_done(token)
            else:
                pe = on_done.__self__
                if o == 1:
                    pe.counters.add("tokens_parked")
                    waiting = pe._waiting = pe._waiting + 1
                    pe.match_occupancy.update(now, waiting)
                else:
                    pe.counters.add("matches")
                    waiting = pe._waiting = pe._waiting - 1
                    pe.match_occupancy.update(now, waiting)
                    if pe._match_causes:
                        pe._match_causes.pop(token.tag, None)
                    mate = tokens[partner[j]]
                    slot = {mate.port: mate.data, token.port: token.data}
                    pe.fetch.submit((token.tag, slot, token.cause),
                                    pe._fetched)
            if not server._busy:
                server._start_next()


class AluBatchKind(BatchKind):
    """SoA ALU: int-vectorized pure-binary execution across PEs.

    Enabled instructions whose opcode is in
    :data:`~repro.dataflow.exec_core.BATCH_INT_BINARY` and whose operands
    are machine ints are grouped by opcode and evaluated with one numpy
    ufunc per group; results are cast back through ``int``/``bool`` at
    extraction so no numpy scalar ever reaches a token.  Everything else
    (other opcodes, non-int operands, missing ports) replays the scalar
    ``_executed`` handler.
    """

    name = "alu"
    min_run = 8

    def __init__(self, machine):
        self.sim = machine.sim
        #: opcode -> (ufunc, bool_result, "class_<x>" counter name)
        self._vec = {
            op: (_NP_BINARY[op.value], op in BATCH_BOOL_RESULT,
                 f"class_{OPCODE_CLASS[op].value}")
            for op in BATCH_INT_BINARY
        } if np is not None else {}

    def apply_run(self, bucket, start, end):
        width = end - start
        vec = self._vec
        values = [_MISS] * width
        groups = {}  # opcode -> (indices, a_operands, b_operands)
        bound = _INT_BOUND
        for j in range(width):
            work = bucket[start + j][1][0]
            instruction = work[0]
            entry = vec.get(instruction.opcode)
            if entry is None or instruction.natural_arity != 2:
                continue
            by_port = work[2]
            cport = instruction.constant_port
            try:
                a = instruction.constant if cport == 0 else by_port[0]
                b = instruction.constant if cport == 1 else by_port[1]
            except KeyError:
                continue  # scalar replay raises the exact MachineError
            if (type(a) is not int or type(b) is not int
                    or not (-bound < a < bound) or not (-bound < b < bound)):
                continue
            group = groups.get(instruction.opcode)
            if group is None:
                group = groups[instruction.opcode] = ([], [], [])
            group[0].append(j)
            group[1].append(a)
            group[2].append(b)
        for opcode, (idxs, a_ops, b_ops) in groups.items():
            ufunc = vec[opcode][0]
            # tolist() round-trips the whole group back to machine ints
            # (or bools, for the comparison ufuncs) in one call, so no
            # numpy scalar ever reaches a token.
            res = ufunc(np.array(a_ops, dtype=np.int64),
                        np.array(b_ops, dtype=np.int64)).tolist()
            for k, j in enumerate(idxs):
                values[j] = res[k]
        now = self.sim._now
        for j in range(width):
            fn, (work, on_done) = bucket[start + j]
            server = fn.__self__
            server.utilization.end(now)
            server._busy = False
            server.items_served += 1
            value = values[j]
            if value is _MISS:
                on_done(work)
            else:
                instruction, tag, by_port, cause = work
                pe = on_done.__self__
                counters = pe.counters
                counters.add("instructions")
                counters.add(vec[instruction.opcode][2])
                emit = pe._emit
                for effect in batched_effects(instruction, tag, value):
                    emit(effect, tag, cause)
            if not server._busy:
                server._start_next()
