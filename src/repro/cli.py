"""Command-line interface: compile, inspect, run and trace Id-like programs.

::

    python -m repro run program.id --args 0.0 1.0 32 0.03125
    python -m repro run program.id --engine machine --pes 8 --latency 10
    python -m repro run program.id --engine machine --metrics metrics.json
    python -m repro trace program.id --out run.trace.json   # open in Perfetto
    python -m repro graph program.id            # text listing (Fig 2-2 style)
    python -m repro graph program.id --dot      # Graphviz DOT on stdout
    python -m repro stats program.id            # structural statistics
    python -m repro profile program.id --engine machine   # causal profile
    python -m repro profile program.id --flow flow.json   # Perfetto overlay
    python -m repro bench --jobs 4 --only e07   # parallel experiment sweep
    python -m repro bench --only e07 --check    # regression gate vs baseline
    python -m repro machine                     # list registered machines
    python -m repro machine ultracomputer --set stages=5 --workload spacing=0.5
    python -m repro serve --workers 4           # simulation-as-a-service
    python -m repro submit e07_trapezoid        # run a sweep on the server
    python -m repro sweeps                      # list the server's sweeps
    python -m repro sweeps sw0001 --trace t.json  # sweep Chrome trace
    python -m repro top                         # live /metrics dashboard
    python -m repro cache stats                 # inspect the result store

The entry procedure defaults to the first ``def`` in the file; override
with ``--entry``.
"""

import argparse
import json
import sys

from .dataflow import Interpreter, MachineConfig, TaggedTokenMachine
from .graph import format_program, graph_statistics, optimize_program, to_dot
from .lang import compile_source
from .obs import ChromeTraceSink, JsonlSink, TraceBus
from .serve.protocol import DEFAULT_PORT as SERVE_DEFAULT_PORT

__all__ = ["main", "build_parser"]


def _parse_value(text):
    """Interpret a CLI argument as int, float, bool, or bare string."""
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    return text


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tagged-token dataflow tools (Arvind & Iannucci, 1983)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compile and execute a program")
    run.add_argument("file", help="Id-like source file")
    run.add_argument("--entry", default=None, help="entry procedure name")
    run.add_argument("--args", nargs="*", default=[],
                     help="arguments for the entry procedure")
    run.add_argument("--engine", choices=("interp", "machine", "vn"),
                     default="interp",
                     help="execution engine (vn = sequential von Neumann "
                          "backend, integer programs only)")
    run.add_argument("--pes", type=int, default=4,
                     help="PE count (machine engine)")
    run.add_argument("--latency", type=float, default=4.0,
                     help="network latency in cycles (machine engine)")
    run.add_argument("--json", action="store_true",
                     help="emit machine-readable JSON")
    run.add_argument("--optimize", action="store_true",
                     help="run the peephole optimizer before executing")
    run.add_argument("--profile", action="store_true",
                     help="print the parallelism profile "
                          "(interpreter engine only)")
    run.add_argument("--metrics", metavar="FILE", default=None,
                     help="dump a metrics snapshot as JSON (any engine)")
    run.add_argument("--trace", metavar="FILE", default=None,
                     help="write a JSONL event trace (timed engines: "
                          "machine, vn)")

    trace = sub.add_parser(
        "trace",
        help="run on the timed machine and export an event timeline",
    )
    trace.add_argument("file", help="Id-like source file")
    trace.add_argument("--out", required=True,
                       help="output path for the trace file")
    trace.add_argument("--entry", default=None)
    trace.add_argument("--args", nargs="*", default=[])
    trace.add_argument("--engine", choices=("machine", "vn"),
                       default="machine")
    trace.add_argument("--pes", type=int, default=4)
    trace.add_argument("--latency", type=float, default=4.0)
    trace.add_argument("--optimize", action="store_true")
    trace.add_argument("--format", choices=("chrome", "jsonl"),
                       default="chrome",
                       help="chrome = trace_event JSON for Perfetto / "
                            "chrome://tracing; jsonl = one event per line")

    graph = sub.add_parser("graph", help="print the compiled dataflow graph")
    graph.add_argument("file")
    graph.add_argument("--entry", default=None)
    graph.add_argument("--dot", action="store_true",
                       help="emit Graphviz DOT instead of a text listing")
    graph.add_argument("--optimize", action="store_true")

    stats = sub.add_parser("stats", help="structural statistics of the graph")
    stats.add_argument("file")
    stats.add_argument("--entry", default=None)
    stats.add_argument("--optimize", action="store_true")

    profile = sub.add_parser(
        "profile",
        help="causal profile: cycle accounting + simulated critical path",
    )
    profile.add_argument("file", help="Id-like source file")
    profile.add_argument("--entry", default=None,
                         help="entry procedure (default: last def)")
    profile.add_argument("--args", nargs="*", default=[],
                         help="arguments (default: 8 per parameter)")
    profile.add_argument("--engine", choices=("machine", "vn"),
                         default="machine",
                         help="timed engine to profile")
    profile.add_argument("--pes", type=int, default=4,
                         help="PE count (machine engine)")
    profile.add_argument("--latency", type=float, default=4.0,
                         help="network latency in cycles")
    profile.add_argument("--optimize", action="store_true")
    profile.add_argument("--exec", choices=("event", "batch"), default=None,
                         help="execution mode (note: provenance tracing "
                              "keeps batch kinds unregistered, so this "
                              "mainly labels the kernel-stats block)")
    profile.add_argument("--path-nodes", type=int, default=12,
                         metavar="N",
                         help="critical-path events to print (default 12)")
    profile.add_argument("--json", action="store_true",
                         help="emit the full profile as JSON on stdout")
    profile.add_argument("--out", metavar="FILE", default=None,
                         help="also write the profile JSON to FILE")
    profile.add_argument("--flow", metavar="FILE", default=None,
                         help="write a Chrome trace with the critical path "
                              "overlaid as flow events (open in Perfetto)")

    bench = sub.add_parser(
        "bench",
        help="run the experiment suite through the parallel sweep engine",
    )
    bench.add_argument("--only", default=None, metavar="SUBSTRING",
                       help="run only experiments whose module or table "
                            "name contains SUBSTRING")
    bench.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes (default: cpu count; "
                            "0 = inline)")
    bench.add_argument("--no-cache", action="store_true",
                       help="ignore and do not update the result cache")
    bench.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-run timeout before terminate + one retry")
    bench.add_argument("--bench-dir", default=None, metavar="DIR",
                       help="benchmarks directory (default: auto-detect)")
    bench.add_argument("--trace", metavar="FILE", default=None,
                       help="write sweep progress events as JSONL")
    bench.add_argument("--check", action="store_true",
                       help="compare the fresh sweep against committed "
                            "baselines; exit nonzero on regression")
    bench.add_argument("--update-baselines", action="store_true",
                       help="(re)write the baseline files from this sweep")
    bench.add_argument("--baseline-dir", default=None, metavar="DIR",
                       help="baseline directory "
                            "(default: <benchmarks>/baselines)")
    bench.add_argument("--check-out", metavar="FILE", default=None,
                       help="write the structured check result as JSON")
    bench.add_argument("--faults", metavar="PLAN", default=None,
                       help="fault-plan JSON file; fault-aware sweeps "
                            "(e20) read it (and its optional 'levels' "
                            "list) while building their grids")
    bench.add_argument("--shards", type=int, default=None, metavar="N",
                       help="run every simulation on the sharded parallel "
                            "kernel with N shards (sets REPRO_SIM_SHARDS; "
                            "tables stay byte-identical to serial runs)")
    bench.add_argument("--exec", choices=("event", "batch"), default=None,
                       help="execution mode for every simulation (sets "
                            "REPRO_EXEC_MODE; batch drains same-instant "
                            "work into numpy SoA kernels, tables stay "
                            "byte-identical to event runs)")
    bench.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result-cache directory (default: "
                            "$REPRO_EXP_CACHE or <benchmarks>/.expcache)")
    bench.add_argument("--remote", default=None, metavar="URL",
                       help="run the suite against a repro serve "
                            "instance instead of in-process; tables are "
                            "still assembled and written locally")

    serve = sub.add_parser(
        "serve",
        help="run the sweep service: HTTP server + persistent worker "
             "pool + durable result store",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None,
                       help=f"TCP port (default {SERVE_DEFAULT_PORT}; "
                            "0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="pool size (default: cpu count)")
    serve.add_argument("--store", default=None, metavar="PATH",
                       help="result store (default: $REPRO_STORE or "
                            "~/.cache/repro/store.sqlite)")
    serve.add_argument("--no-store", action="store_true",
                       help="serve without a durable store (every cell "
                            "is always simulated)")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-attempt timeout (covers worker "
                            "startup and the run itself)")
    serve.add_argument("--retries", type=int, default=None, metavar="N",
                       help="default retry budget per cell")
    serve.add_argument("--backup-fraction", type=float, default=0.2,
                       metavar="F",
                       help="straggler backup budget as a fraction of "
                            "the grid (0 disables backups)")
    serve.add_argument("--bench-dir", default=None, metavar="DIR",
                       help="benchmarks directory (default: auto-detect)")
    serve.add_argument("--trace", metavar="FILE", default=None,
                       help="write scheduler events as JSONL")

    submit = sub.add_parser(
        "submit",
        help="submit a sweep to a repro serve instance and (by default) "
             "wait for the table",
    )
    submit.add_argument("experiment", nargs="?", default=None,
                        help="a run_all table name, e.g. e07_trapezoid")
    submit.add_argument("--url", default=None, metavar="URL",
                        help="server address (default: $REPRO_SERVE_URL "
                             f"or 127.0.0.1:{SERVE_DEFAULT_PORT})")
    submit.add_argument("--callable", dest="callable_", default=None,
                        metavar="MODULE:FUNCTION",
                        help="inline sweep run function (needs --grid)")
    submit.add_argument("--grid", metavar="FILE", default=None,
                        help="JSON file with a list of config objects "
                             "overriding the experiment's grid")
    submit.add_argument("--faults", metavar="PLAN", default=None,
                        help="fault-plan JSON file (machine-level "
                             "fields + worker_crash_rate chaos)")
    submit.add_argument("--no-store", action="store_true",
                        help="skip store lookups; every cell is freshly "
                             "simulated (results still stored)")
    submit.add_argument("--no-backup", action="store_true",
                        help="disable straggler backup copies")
    submit.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS", help="per-attempt timeout")
    submit.add_argument("--retries", type=int, default=None, metavar="N",
                        help="retry budget per cell")
    submit.add_argument("--label", default=None,
                        help="free-form label echoed in sweep listings")
    submit.add_argument("--predict", action="store_true",
                        help="answer in-region cells from the analytic "
                             "surrogate (repro.predict) instead of the "
                             "worker pool; out-of-region cells fall "
                             "back to workers")
    submit.add_argument("--detach", action="store_true",
                        help="print the sweep id and exit without "
                             "waiting")
    submit.add_argument("--quiet", action="store_true",
                        help="suppress per-event progress lines")
    submit.add_argument("--json", action="store_true",
                        help="print the final status snapshot as JSON "
                             "instead of the table")

    sweeps = sub.add_parser(
        "sweeps",
        help="list or inspect sweeps on a repro serve instance",
    )
    sweeps.add_argument("id", nargs="?", default=None,
                        help="sweep id (omit to list all sweeps)")
    sweeps.add_argument("--url", default=None, metavar="URL",
                        help="server address (default: $REPRO_SERVE_URL "
                             f"or 127.0.0.1:{SERVE_DEFAULT_PORT})")
    sweeps.add_argument("--events", action="store_true",
                        help="dump the sweep's progress events")
    sweeps.add_argument("--table", action="store_true",
                        help="print the sweep's assembled table")
    sweeps.add_argument("--trace", metavar="FILE", default=None,
                        help="fetch the sweep's Chrome trace and write "
                             "it to FILE (open in Perfetto)")
    sweeps.add_argument("--json", action="store_true",
                        help="machine-readable output")

    top = sub.add_parser(
        "top",
        help="live worker/queue/sweep status of a repro serve "
             "instance, polled from its /metrics endpoint",
    )
    top.add_argument("url", nargs="?", default=None, metavar="URL",
                     help="server address (default: $REPRO_SERVE_URL "
                          f"or 127.0.0.1:{SERVE_DEFAULT_PORT})")
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="seconds between polls (default 2)")
    top.add_argument("--iterations", type=int, default=None, metavar="N",
                     help="stop after N polls (default: until Ctrl-C)")
    top.add_argument("--json", action="store_true",
                     help="emit one parsed metrics snapshot per poll "
                          "as JSON lines instead of the dashboard")

    cache = sub.add_parser(
        "cache",
        help="inspect and maintain the content-addressed result store",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry/byte counts per experiment")
    cache_prune = cache_sub.add_parser(
        "prune", help="drop entries older than a cutoff")
    cache_prune.add_argument("--older-than", required=True,
                             metavar="DURATION",
                             help="age cutoff, e.g. 30m, 12h, 7d, 2w "
                                  "(bare numbers are seconds)")
    cache_clear = cache_sub.add_parser(
        "clear", help="drop every entry")
    cache_ingest = cache_sub.add_parser(
        "ingest", help="import a legacy .expcache directory's entries")
    cache_ingest.add_argument("dir", help="directory cache to import, "
                                          "e.g. benchmarks/.expcache")
    for sub_parser in (cache_stats, cache_prune, cache_clear,
                       cache_ingest):
        sub_parser.add_argument(
            "--store", default=None, metavar="PATH",
            help="store path (default: $REPRO_STORE or "
                 "~/.cache/repro/store.sqlite; a legacy .expcache "
                 "directory also works)")
        sub_parser.add_argument("--json", action="store_true",
                                help="machine-readable output")

    machine = sub.add_parser(
        "machine",
        help="construct a registered machine model and run one workload",
    )
    machine.add_argument("name", nargs="?", default=None,
                         help="registry name (omit to list the registry)")
    machine.add_argument("--set", dest="config", nargs="*", default=[],
                         metavar="KEY=VALUE",
                         help="constructor config, e.g. stages=5")
    machine.add_argument("--workload", nargs="*", default=[],
                         metavar="KEY=VALUE",
                         help="run() arguments, e.g. workload=graph rounds=4")
    machine.add_argument("--faults", metavar="PLAN", default=None,
                         help="fault-plan JSON file passed to the model "
                              "as faults=...")
    machine.add_argument("--shards", type=int, default=None, metavar="N",
                         help="pass shards=N to the model (sharded "
                              "parallel kernel)")
    machine.add_argument("--exec", choices=("event", "batch"), default=None,
                         help="pass exec_mode to the model (batch = "
                              "numpy SoA batch execution)")
    machine.add_argument("--topology", action="store_true",
                         help="print the machine's partition graph "
                              "(registry.describe) instead of running it")
    machine.add_argument("--json", action="store_true",
                         help="emit the SimResult as JSON")

    predict = sub.add_parser(
        "predict",
        help="answer a machine-config query in microseconds from the "
             "fitted Amdahl/queueing surrogate (no simulation)",
    )
    predict.add_argument("machine_name", nargs="?", default=None,
                         metavar="MACHINE",
                         help="fitted machine (omit to list fits)")
    predict.add_argument("query", nargs="*", default=[],
                         metavar="KEY=VALUE",
                         help="workload=NAME plus knob overrides, e.g. "
                              "workload=matmul n_pes=8 network_latency=20")
    predict.add_argument("--fit", action="store_true",
                         help="(re)fit the surrogates from simulation and "
                              "write the artifacts, then exit")
    predict.add_argument("--validate", action="store_true",
                         help="sweep fit-vs-simulation error over the "
                              "fitted grids; nonzero exit when the "
                              "documented bounds are exceeded")
    predict.add_argument("--extrapolate", action="store_true",
                         help="answer out-of-region queries anyway "
                              "(default: refuse with exit code 2)")
    predict.add_argument("--fits-dir", default=None, metavar="DIR",
                         help="fit-artifact directory (default: "
                              "<benchmarks>/fits)")
    predict.add_argument("--json", action="store_true",
                         help="machine-readable output")
    return parser


def _load(path, entry, optimize=False):
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    program = compile_source(source, entry=entry)
    if optimize:
        program = optimize_program(program)
    return program


def _make_trace_bus(options):
    """(bus, sink) for ``run --trace FILE``; (None, None) when off."""
    trace_path = getattr(options, "trace", None)
    if trace_path is None:
        return None, None
    if options.engine == "interp":
        raise SystemExit(
            "--trace needs a timed engine (the interpreter has no clock); "
            "use --engine machine or --engine vn"
        )
    bus = TraceBus()
    sink = bus.add_sink(JsonlSink(trace_path))
    return bus, sink


def _write_metrics(options, snapshot, out):
    path = getattr(options, "metrics", None)
    if path is None:
        return
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True, default=repr)
        fh.write("\n")
    print(f"metrics: {len(snapshot)} value(s) -> {path}", file=out)


def _cmd_run(options, out):
    args = [_parse_value(a) for a in options.args]
    bus, trace_sink = _make_trace_bus(options)
    if options.engine == "vn":
        from .vonneumann import run_sequential

        with open(options.file, "r", encoding="utf-8") as fh:
            source = fh.read()
        value, result = run_sequential(source, tuple(args),
                                       entry=options.entry,
                                       latency=options.latency,
                                       trace_bus=bus)
        payload = {
            "result": value,
            "engine": f"von Neumann uniprocessor [latency "
                      f"{options.latency}]",
            "time_cycles": result.time,
            "instructions": result.instructions,
            "utilization": round(result.mean_utilization, 4),
        }
        snapshot = {
            "engine": "vn",
            "time_cycles": result.time,
            "instructions": result.instructions,
            "utilization": result.mean_utilization,
        }
        snapshot.update(
            {f"counters.{k}": v for k, v in sorted(result.counters.items())}
        )
    else:
        program = _load(options.file, options.entry, options.optimize)
        if options.engine == "interp":
            interp = Interpreter(program)
            value = interp.run(*args)
            payload = {
                "result": value,
                "engine": "interpreter",
                "instructions": interp.instructions_executed,
                "critical_path": interp.critical_path,
                "average_parallelism": round(interp.average_parallelism(), 3),
            }
            snapshot = {
                "engine": "interp",
                "instructions": interp.instructions_executed,
                "critical_path": interp.critical_path,
                "average_parallelism": interp.average_parallelism(),
            }
        else:
            config = MachineConfig(n_pes=options.pes,
                                   network_latency=options.latency,
                                   trace_bus=bus)
            machine = TaggedTokenMachine(program, config)
            result = machine.run(*args)
            payload = {
                "result": result.value,
                "engine": f"machine[{options.pes} PEs, latency "
                          f"{options.latency}]",
                "time_cycles": result.time,
                "instructions": result.instructions,
                "mean_alu_utilization": round(result.mean_alu_utilization, 4),
                "network_tokens": result.counters.get("tokens_network", 0),
            }
            snapshot = machine.metrics_snapshot()
            snapshot["engine"] = "machine"
    if options.json:
        print(json.dumps(payload), file=out)
    else:
        print(f"result: {payload.pop('result')!r}", file=out)
        for key, value in payload.items():
            print(f"  {key}: {value}", file=out)
    if trace_sink is not None:
        trace_sink.close()
        print(f"trace: {trace_sink.written} event(s) -> {options.trace}",
              file=out)
    _write_metrics(options, snapshot, out)
    if options.engine == "interp" and getattr(options, "profile", False):
        print("parallelism profile (instructions ready per step):", file=out)
        profile = interp.parallelism_profile
        peak = max(profile.values())
        for step in sorted(profile):
            count = profile[step]
            bar = "#" * max(1, round(40 * count / peak))
            print(f"  t={step:<5} {bar} {count}", file=out)
    return 0


DEMO_ARGUMENT = 8  # stands in for omitted `trace` arguments


def _trace_defaults(options):
    """Fill in entry/args so a bare ``repro trace file --out t.json`` works.

    With no ``--entry``, trace the *last* procedure in the file — demo
    files define helpers first and the interesting program last (for
    ``run`` the historical first-def default stands).  With no ``--args``,
    every parameter gets :data:`DEMO_ARGUMENT`, a value small enough to
    finish fast and large enough to drive loops around a few times.
    """
    from .lang import parse

    with open(options.file, "r", encoding="utf-8") as fh:
        ast = parse(fh.read())
    entry = options.entry
    if entry is None:
        entry = ast.defs[-1].name
    args = [_parse_value(a) for a in options.args]
    if not args:
        definition = next(d for d in ast.defs if d.name == entry)
        args = [DEMO_ARGUMENT] * len(definition.params)
    return entry, args


def _cmd_trace(options, out):
    """Run on a timed engine with a trace sink and export the timeline."""
    entry, args = _trace_defaults(options)
    options.entry = entry
    bus = TraceBus()
    if options.format == "chrome":
        sink = bus.add_sink(ChromeTraceSink())
    else:
        sink = bus.add_sink(JsonlSink(options.out))
    if options.engine == "vn":
        from .vonneumann import run_sequential

        with open(options.file, "r", encoding="utf-8") as fh:
            source = fh.read()
        value, result = run_sequential(source, tuple(args),
                                       entry=options.entry,
                                       latency=options.latency,
                                       trace_bus=bus)
        time_cycles, instructions = result.time, result.instructions
    else:
        program = _load(options.file, options.entry, options.optimize)
        config = MachineConfig(n_pes=options.pes,
                               network_latency=options.latency,
                               trace_bus=bus)
        machine = TaggedTokenMachine(program, config)
        result = machine.run(*args)
        value = result.value
        time_cycles, instructions = result.time, result.instructions
    if options.format == "chrome":
        sink.write(options.out, meta={
            "source": options.file,
            "engine": options.engine,
            "args": [repr(a) for a in args],
        })
        events = len(sink)
    else:
        sink.close()
        events = sink.written
    print(f"result: {value!r}", file=out)
    print(f"  time_cycles: {time_cycles}", file=out)
    print(f"  instructions: {instructions}", file=out)
    print(f"  trace: {events} event(s) -> {options.out} "
          f"[{options.format}]", file=out)
    if options.format == "chrome":
        print("  view: load the file at https://ui.perfetto.dev or "
              "chrome://tracing", file=out)
    return 0


def _cmd_profile(options, out):
    """Run under provenance tracing; report accounting + critical path."""
    from .obs import RingSink
    from .obs.analysis import build_profile, chrome_flow_events

    entry, args = _trace_defaults(options)
    options.entry = entry
    bus = TraceBus(provenance=True)
    ring = bus.add_sink(RingSink(limit=None))
    chrome = bus.add_sink(ChromeTraceSink()) if options.flow else None

    if options.engine == "vn":
        from .obs.analysis import vn_accounting
        from .vonneumann import run_sequential

        with open(options.file, "r", encoding="utf-8") as fh:
            source = fh.read()
        value, result, machine = run_sequential(
            source, tuple(args), entry=entry, latency=options.latency,
            trace_bus=bus, return_machine=True,
            exec_mode=options.exec)
        accounting = vn_accounting(machine, result, name="vn")
    else:
        from .obs.analysis import ttda_accounting

        program = _load(options.file, entry, options.optimize)
        config = MachineConfig(n_pes=options.pes,
                               network_latency=options.latency,
                               trace_bus=bus,
                               exec_mode=options.exec)
        machine = TaggedTokenMachine(program, config)
        result = machine.run(*args)
        value = result.value
        accounting = ttda_accounting(machine)
    meta = {
        "source": options.file,
        "engine": options.engine,
        "entry": entry,
        "args": [repr(a) for a in args],
        "result": value,
        "time_cycles": result.time,
        "instructions": result.instructions,
    }
    kernel_stats = getattr(getattr(machine, "sim", None),
                           "kernel_stats", None)
    if kernel_stats is not None:
        meta["kernel_stats"] = kernel_stats()
    report = build_profile(ring.events, accounting, meta=meta)
    if options.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True,
                         default=repr), file=out)
    else:
        print(report.format(max_path_nodes=options.path_nodes), file=out)
        if "kernel_stats" in meta:
            print("event kernel:", file=out)
            for key, stat in sorted(meta["kernel_stats"].items()):
                print(f"  {key}: {stat}", file=out)
    if options.out:
        with open(options.out, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True,
                      default=repr)
            fh.write("\n")
        print(f"profile json -> {options.out}", file=out)
    if chrome is not None:
        if report.path is not None:
            chrome.extend(chrome_flow_events(report.path, chrome.tid_of,
                                             cycle_us=chrome.cycle_us))
        chrome.write(options.flow, meta={
            "source": options.file,
            "engine": options.engine,
            "args": [repr(a) for a in args],
        })
        print(f"flow trace: {len(chrome)} event(s) -> {options.flow}",
              file=out)
        print("  view: load the file at https://ui.perfetto.dev or "
              "chrome://tracing", file=out)
    return 0


def _cmd_graph(options, out):
    program = _load(options.file, options.entry, options.optimize)
    if options.dot:
        print(to_dot(program, title=options.file), file=out)
    else:
        print(format_program(program), file=out)
    return 0


def _cmd_stats(options, out):
    program = _load(options.file, options.entry, options.optimize)
    print(json.dumps(graph_statistics(program), indent=2, sort_keys=True),
          file=out)
    return 0


def _parse_kv(pairs, what):
    """``["a=1", "b=true"]`` -> {"a": 1, "b": True} with typed values."""
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"{what} arguments must be KEY=VALUE, "
                             f"got {pair!r}")
        key, _, value = pair.partition("=")
        out[key] = _parse_value(value)
    return out


def _cmd_bench(options, out):
    """Run the benchmark suite through the repro.exp sweep engine."""
    from .exp.bench import run_suite
    from .obs import JsonlSink, TraceBus

    if options.shards is not None:
        import os

        from .common.simulator import resolve_shards

        # The env route (not per-spec config) keeps specs, cache keys,
        # and config echoes byte-identical to serial runs — which is the
        # whole point: the psim-smoke CI job diffs the tables.
        os.environ["REPRO_SIM_SHARDS"] = str(resolve_shards(options.shards))
    if options.exec is not None:
        import os

        # Same env route as --shards, for the same reason: the perf-smoke
        # CI job byte-diffs batch-mode tables against the baselines.
        os.environ["REPRO_EXEC_MODE"] = options.exec
    bus = None
    sink = None
    if options.trace:
        bus = TraceBus()
        sink = bus.add_sink(JsonlSink(options.trace))
    if options.remote:
        from .serve.client import remote_suite

        aggregate = remote_suite(
            options.remote,
            only=options.only,
            bench_dir=options.bench_dir,
            faults=options.faults,
            timeout=options.timeout,
        )
    else:
        aggregate = run_suite(
            only=options.only,
            jobs=options.jobs,
            no_cache=options.no_cache,
            timeout=options.timeout,
            bench_dir=options.bench_dir,
            cache_dir=options.cache_dir,
            bus=bus,
            faults=options.faults,
        )
    if sink is not None:
        sink.close()
        print(f"sweep trace: {sink.written} event(s) -> {options.trace}",
              file=out)
    status = 1 if aggregate["failures"] else 0
    if options.update_baselines or options.check:
        import os

        from .exp.bench import find_bench_dir
        from .obs.analysis import check_suite, format_report, write_baselines

        baseline_dir = options.baseline_dir or os.path.join(
            find_bench_dir(options.bench_dir), "baselines")
        entries = aggregate["experiments"]
        if options.update_baselines:
            paths = write_baselines(entries, baseline_dir)
            print(f"baselines: {len(paths)} file(s) -> {baseline_dir}",
                  file=out)
        if options.check:
            result = check_suite(entries, baseline_dir)
            print(format_report(result), file=out)
            if options.check_out:
                with open(options.check_out, "w", encoding="utf-8") as fh:
                    json.dump(result, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                print(f"check result -> {options.check_out}", file=out)
            if not result["ok"]:
                status = 1
    return status


def _serve_url(options):
    import os

    return (options.url or os.environ.get("REPRO_SERVE_URL")
            or f"127.0.0.1:{SERVE_DEFAULT_PORT}")


_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0,
                   "w": 7 * 86400.0}


def _parse_duration(text):
    """``"30m"`` / ``"12h"`` / ``"7d"`` / ``"3600"`` -> seconds."""
    text = text.strip().lower()
    unit = 1.0
    if text and text[-1] in _DURATION_UNITS:
        unit = _DURATION_UNITS[text[-1]]
        text = text[:-1]
    try:
        return float(text) * unit
    except ValueError:
        raise SystemExit(
            f"bad duration {text!r}: use a number with an optional "
            "s/m/h/d/w suffix, e.g. 30m or 7d") from None


def _cmd_serve(options, out):
    """Run the sweep service until SIGINT or POST /shutdown."""
    from .serve.server import run_server

    bus = None
    sink = None
    if options.trace:
        bus = TraceBus()
        sink = bus.add_sink(JsonlSink(options.trace))
    try:
        return run_server(
            host=options.host,
            port=(SERVE_DEFAULT_PORT if options.port is None
                  else options.port),
            workers=options.workers,
            store_path=options.store,
            no_store=options.no_store,
            timeout=options.timeout,
            retries=options.retries,
            backup_fraction=options.backup_fraction,
            bench_dir=options.bench_dir,
            bus=bus,
        )
    finally:
        if sink is not None:
            sink.close()


def _submit_request(options):
    request = {}
    if options.experiment:
        request["experiment"] = options.experiment
    if options.callable_:
        request["callable"] = options.callable_
    if options.grid:
        with open(options.grid, "r", encoding="utf-8") as fh:
            request["grid"] = json.load(fh)
    if options.faults:
        with open(options.faults, "r", encoding="utf-8") as fh:
            request["faults"] = json.load(fh)
    if options.no_store:
        request["no_store"] = True
    if options.no_backup:
        request["backup"] = False
    if options.timeout is not None:
        request["timeout"] = options.timeout
    if options.retries is not None:
        request["retries"] = options.retries
    if options.label:
        request["label"] = options.label
    if options.predict:
        request["predict"] = True
    return request


def _cmd_submit(options, out):
    """Submit one sweep; print its table (stdout) when it finishes."""
    from .serve.client import ServeClient, ServeError

    client = ServeClient(_serve_url(options))
    request = _submit_request(options)
    if not request.get("experiment") and not request.get("callable"):
        raise SystemExit("submit needs an experiment name (e.g. "
                         "e07_trapezoid) or --callable")
    try:
        submitted = client.submit(request)
        sweep_id = submitted["id"]
        if options.detach:
            print(sweep_id, file=out)
            return 0

        def on_event(event):
            if options.quiet:
                return
            print(f"  [{sweep_id}] {event.get('kind')}: "
                  f"{event.get('detail', '')}", file=sys.stderr)

        status = client.wait(sweep_id, on_event=on_event)
        if options.json:
            print(json.dumps(status, indent=2, sort_keys=True,
                             default=repr), file=out)
            return 0 if (status["state"] == "done"
                         and not status["failed"]) else 1
        if status["state"] != "done" or status["failed"]:
            for row in status.get("records", []):
                if row["status"] != "ok":
                    print(f"[FAILED] {status['experiment']}"
                          f"[{row['index']}] {row['status']} after "
                          f"{row['attempts']} attempt(s):\n"
                          f"{row['error']}", file=sys.stderr)
            return 1
        # The table prints with a trailing newline — byte-identical to
        # the benchmarks/results/<name>.txt a local bench run writes.
        print(client.table(sweep_id), end="", file=out)
        stats = status["stats"]
        print(f"[{sweep_id}] {status['experiment']}: "
              f"{status['cells']} cell(s), "
              f"{stats['store_hits']} from store, "
              f"{stats['executed']} simulated, "
              f"{status['wall_seconds']:.2f}s", file=sys.stderr)
        return 0
    except ServeError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"cannot reach {_serve_url(options)}: {exc} "
              "(is `repro serve` running?)", file=sys.stderr)
        return 1


def _cmd_sweeps(options, out):
    """List or inspect sweeps on the server."""
    from .serve.client import ServeClient, ServeError

    client = ServeClient(_serve_url(options))
    try:
        if options.id is None:
            sweeps = client.sweeps()
            if options.json:
                print(json.dumps(sweeps, indent=2, sort_keys=True,
                                 default=repr), file=out)
                return 0
            if not sweeps:
                print("no sweeps", file=out)
                return 0
            for sweep in sweeps:
                label = f"  [{sweep['label']}]" if sweep.get("label") \
                    else ""
                print(f"  {sweep['id']}  {sweep['state']:<8} "
                      f"{sweep['experiment']:<24} "
                      f"{sweep['completed']}/{sweep['cells']} cells "
                      f"({sweep['cached']} cached) "
                      f"{sweep['wall_seconds']:.2f}s{label}", file=out)
            return 0
        if options.table:
            print(client.table(options.id), end="", file=out)
            return 0
        if options.trace:
            payload = client.trace(options.id)
            with open(options.trace, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True, default=repr)
                fh.write("\n")
            print(f"trace: {len(payload['traceEvents'])} event(s) -> "
                  f"{options.trace}", file=out)
            print("  view: load the file at https://ui.perfetto.dev or "
                  "chrome://tracing", file=out)
            return 0
        if options.events:
            chunk = client.events(options.id, since=0, timeout=0.0)
            for event in chunk["events"]:
                print(json.dumps(event, sort_keys=True, default=repr),
                      file=out)
            return 0
        status = client.status(options.id)
        if options.json:
            print(json.dumps(status, indent=2, sort_keys=True,
                             default=repr), file=out)
            return 0
        for key in ("id", "experiment", "label", "state", "cells",
                    "completed", "ok", "failed", "cached",
                    "wall_seconds"):
            print(f"  {key}: {status[key]}", file=out)
        for key, value in sorted(status["stats"].items()):
            print(f"  stats.{key}: {value}", file=out)
        return 0
    except ServeError as exc:
        print(f"sweeps failed: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"cannot reach {_serve_url(options)}: {exc} "
              "(is `repro serve` running?)", file=sys.stderr)
        return 1


def _top_frame(client):
    """One poll: (parsed-metrics dict, active-sweeps list)."""
    from .obs.live import parse_prometheus

    parsed = parse_prometheus(client.metrics())
    sweeps = [s for s in client.sweeps()
              if s.get("state") in ("queued", "running")]
    return parsed, sweeps


def _metric(parsed, name, default=0.0, **labels):
    key = (f"repro_{name}",
           tuple(sorted(labels.items())) if labels else ())
    return parsed.get(key, default)


def _sum_metric(parsed, name):
    """Sum a family over all its label sets (e.g. a status label)."""
    return sum(v for (n, _labels), v in parsed.items()
               if n == f"repro_{name}")


def _cmd_top(options, out):
    """Poll ``/metrics`` and render a one-screen live dashboard."""
    import time as _time

    from .serve.client import ServeClient

    client = ServeClient(_serve_url(options))
    previous = None
    iteration = 0
    try:
        while True:
            try:
                parsed, active = _top_frame(client)
            except (ConnectionError, OSError) as exc:
                print(f"cannot reach {_serve_url(options)}: {exc} "
                      "(is `repro serve` running?)", file=sys.stderr)
                return 1
            iteration += 1
            if options.json:
                snapshot = {f"{name}{dict(labels) or ''}": value
                            for (name, labels), value
                            in sorted(parsed.items())}
                print(json.dumps(snapshot, sort_keys=True), file=out)
            else:
                executed = _metric(parsed, "cells_executed_total")
                hits = _metric(parsed, "cells_store_hit_total")
                rate = ""
                if previous is not None:
                    dt = max(1e-9, _time.monotonic() - previous[0])
                    per_s = ((executed + hits) - previous[1]) / dt
                    rate = f"  {per_s:.1f} cells/s"
                previous = (_time.monotonic(), executed + hits)
                alive = _metric(parsed, "workers_alive")
                busy = _metric(parsed, "workers_busy")
                print(f"-- repro top @ {_serve_url(options)} "
                      f"[poll {iteration}] --", file=out)
                print(f"  workers: {busy:g}/{alive:g} busy "
                      f"(spawned {_metric(parsed, 'workers_spawned_total'):g}, "
                      f"deaths {_metric(parsed, 'worker_deaths_total'):g})",
                      file=out)
                print(f"  queue:   {_metric(parsed, 'queue_depth'):g} "
                      f"cell(s) queued, "
                      f"{_metric(parsed, 'sweeps_active'):g} sweep(s) "
                      "active", file=out)
                print(f"  cells:   {executed:g} executed, {hits:g} from "
                      f"store, "
                      f"{_metric(parsed, 'cells_requeued_total'):g} "
                      f"requeued, "
                      f"{_metric(parsed, 'cell_timeouts_total'):g} "
                      f"timeouts{rate}", file=out)
                print(f"  backups: "
                      f"{_metric(parsed, 'backup_tasks_total'):g} issued, "
                      f"{_metric(parsed, 'backup_wins_total'):g} won",
                      file=out)
                print(f"  predict: "
                      f"{_metric(parsed, 'predict_cells_total'):g} "
                      "cell(s) from surrogate, "
                      f"{_metric(parsed, 'predict_requests_total'):g} "
                      "queries "
                      f"({_metric(parsed, 'predict_out_of_region_total'):g} "
                      "out of region)", file=out)
                print(f"  sweeps:  "
                      f"{_metric(parsed, 'sweeps_submitted_total'):g} "
                      "submitted, "
                      f"{_sum_metric(parsed, 'sweeps_completed_total'):g} "
                      "finished", file=out)
                for sweep in active:
                    print(f"    {sweep['id']}  {sweep['state']:<8} "
                          f"{sweep['experiment']:<24} "
                          f"{sweep['completed']}/{sweep['cells']} cells",
                          file=out)
            if options.iterations is not None \
                    and iteration >= options.iterations:
                return 0
            _time.sleep(options.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_cache(options, out):
    """Inspect / prune / clear / ingest the durable result store."""
    from .serve.store import open_store

    store = open_store(options.store)
    try:
        if options.cache_command == "stats":
            stats = store.stats()
            if options.json:
                print(json.dumps(stats, indent=2, sort_keys=True,
                                 default=repr), file=out)
                return 0
            print(f"  store: {stats['root']} [{stats['backend']}]",
                  file=out)
            print(f"  entries: {stats['entries']} "
                  f"({stats['bytes']} bytes)", file=out)
            if stats.get("oldest_age_seconds") is not None:
                print(f"  oldest: {stats['oldest_age_seconds']:.0f}s ago",
                      file=out)
            for name, entry in sorted(stats["experiments"].items()):
                print(f"    {name:<28} {entry['entries']:>5} entries "
                      f"{entry['bytes']:>10} bytes", file=out)
            return 0
        if options.cache_command == "prune":
            try:
                dropped = store.prune(_parse_duration(options.older_than))
            except ValueError as exc:
                raise SystemExit(f"repro cache prune: {exc}")
            print(f"pruned {dropped} entr"
                  f"{'y' if dropped == 1 else 'ies'} older than "
                  f"{options.older_than}", file=out)
            return 0
        if options.cache_command == "clear":
            dropped = store.clear()
            print(f"cleared {dropped} entr"
                  f"{'y' if dropped == 1 else 'ies'}", file=out)
            return 0
        if options.cache_command == "ingest":
            if not hasattr(store, "ingest_dir"):
                raise SystemExit("ingest needs a SQLite store target "
                                 "(--store pointing at a directory "
                                 "cache cannot ingest)")
            added = store.ingest_dir(options.dir)
            print(f"ingested {added} entr"
                  f"{'y' if added == 1 else 'ies'} from {options.dir}",
                  file=out)
            return 0
        raise SystemExit(f"unknown cache command "
                         f"{options.cache_command!r}")
    finally:
        if hasattr(store, "close"):
            store.close()


def _cmd_machine(options, out):
    """Uniformly construct and run any registered machine model."""
    from .machines import registry

    if options.name is None:
        for name in registry.names():
            cls = registry.get(name)
            doc = (cls.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:<20} {doc}", file=out)
        return 0
    config = _parse_kv(options.config, "--set")
    if options.faults is not None:
        from .faults import coerce_plan

        config["faults"] = coerce_plan(options.faults).as_dict()
    if options.shards is not None:
        from .common.simulator import resolve_shards

        config["shards"] = resolve_shards(options.shards)
    if options.exec is not None:
        config["exec_mode"] = options.exec
    if options.topology:
        print(json.dumps(registry.describe(options.name, **config),
                         indent=2, sort_keys=True), file=out)
        return 0
    model = registry.create(options.name, **config)
    result = model.run(**_parse_kv(options.workload, "--workload"))
    if options.json:
        payload = result.as_dict()
        # Kernel telemetry rides the CLI report, not the cacheable
        # payload (as_dict stays byte-identical across kernels).
        if result.kernel_stats is not None:
            payload["kernel_stats"] = result.kernel_stats
        print(json.dumps(payload, indent=2, sort_keys=True,
                         default=repr), file=out)
    else:
        print(f"machine: {result.machine}", file=out)
        for section in ("config", "workload", "metrics"):
            print(f"  {section}:", file=out)
            for key, value in sorted(getattr(result, section).items()):
                print(f"    {key}: {value}", file=out)
        if result.kernel_stats is not None:
            print("  kernel_stats:", file=out)
            for key, value in sorted(result.kernel_stats.items()):
                print(f"    {key}: {value}", file=out)
        if result.accounting is not None:
            from .obs.analysis import BUCKETS

            acct = result.profile()
            fractions = acct.fractions()
            print(f"  accounting: window {acct.window:g} cycles x "
                  f"{acct.n_units} unit(s)", file=out)
            for bucket in BUCKETS:
                print(f"    {bucket}: {acct.totals()[bucket]:g} "
                      f"({100.0 * fractions[bucket]:.2f}%)", file=out)
    return 0


def _cmd_predict(options, out):
    """Query / fit / validate the analytic surrogate (repro.predict)."""
    from .predict import (CELL_EXPERIMENTS, OutOfRegionError, PredictError,
                          PredictPlane, default_fits_dir, fit_cells,
                          fit_machine, fitted_machines, resolve_benchmark,
                          validate_all, write_cells, write_fit)

    fits_dir = options.fits_dir or default_fits_dir()

    if options.fit:
        machines = ([options.machine_name] if options.machine_name
                    else list(fitted_machines()))
        paths = []
        for machine in machines:
            paths.append(write_fit(fit_machine(machine), fits_dir))
            print(f"  fit: {machine} -> {paths[-1]}", file=sys.stderr)
        for name in CELL_EXPERIMENTS:
            paths.append(write_cells(fit_cells(resolve_benchmark(name)),
                                     fits_dir))
            print(f"  fit: {name} (cells) -> {paths[-1]}", file=sys.stderr)
        if options.json:
            print(json.dumps({"written": paths}, indent=2, sort_keys=True),
                  file=out)
        return 0

    if options.validate:
        machines = ([options.machine_name] if options.machine_name
                    else list(fitted_machines()))
        try:
            report = validate_all(machines, fits_dir)
        except ValueError as exc:
            raise SystemExit(f"repro predict --validate: {exc}")
        if options.json:
            print(json.dumps(report, indent=2, sort_keys=True), file=out)
        else:
            for entry in report["machines"]:
                overall = entry["overall"]
                flag = "ok" if entry["ok"] else "EXCEEDS BOUNDS"
                print(f"  {entry['machine']:<8} median "
                      f"{100 * overall['median_rel']:.2f}%  p95 "
                      f"{100 * overall['p95_rel']:.2f}%  max "
                      f"{100 * overall['max_rel']:.2f}%  "
                      f"({overall['points']} points)  [{flag}]", file=out)
                for name, stats in sorted(entry["workloads"].items()):
                    print(f"    {name:<14} median "
                          f"{100 * stats['median_rel']:.2f}%  p95 "
                          f"{100 * stats['p95_rel']:.2f}%", file=out)
            bounds = report["machines"][0]["bounds"] if report["machines"] \
                else {}
            print(f"  bounds: median <= "
                  f"{100 * bounds.get('median_rel', 0):.0f}%, p95 <= "
                  f"{100 * bounds.get('p95_rel', 0):.0f}%", file=out)
        return 0 if report["ok"] else 1

    plane = PredictPlane(fits_dir=fits_dir)
    if options.machine_name is None:
        described = plane.describe()
        if options.json:
            print(json.dumps(described, indent=2, sort_keys=True), file=out)
            return 0
        if not described["machines"]:
            print(f"no fit artifacts in {fits_dir} "
                  "(run `repro predict --fit`)", file=out)
            return 1
        for machine, workloads in sorted(described["machines"].items()):
            print(f"  {machine}:", file=out)
            for workload, region in sorted(workloads.items()):
                box = ", ".join(f"{knob}∈[{low:g}, {high:g}]"
                                for knob, (low, high)
                                in sorted(region.items()))
                print(f"    {workload:<14} {box}", file=out)
        return 0

    query = _parse_kv(options.query, "predict")
    try:
        answer = plane.query(options.machine_name, query,
                             extrapolate=options.extrapolate)
    except OutOfRegionError as exc:
        print(f"predict refused: {exc}", file=sys.stderr)
        return 2
    except PredictError as exc:
        print(f"predict failed: {exc}", file=sys.stderr)
        return 1
    if options.json:
        print(json.dumps(answer, indent=2, sort_keys=True), file=out)
        return 0
    print(f"machine: {answer['machine']}  workload: {answer['workload']}"
          + ("" if answer["in_region"] else "  [EXTRAPOLATED]"), file=out)
    for knob, value in sorted(answer["config"].items()):
        print(f"  {knob}: {value}", file=out)
    print(f"  predicted time: {answer['time']:.6g} cycles", file=out)
    for bucket, mean in answer["buckets"].items():
        print(f"    {bucket}: {mean:.6g}", file=out)
    err = answer["train_error"]
    print(f"  fit error over its grid: median "
          f"{100 * err['median_rel']:.2f}%, p95 "
          f"{100 * err['p95_rel']:.2f}%", file=out)
    return 0


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    options = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "graph": _cmd_graph,
        "stats": _cmd_stats,
        "bench": _cmd_bench,
        "machine": _cmd_machine,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "sweeps": _cmd_sweeps,
        "top": _cmd_top,
        "cache": _cmd_cache,
        "predict": _cmd_predict,
    }[options.command]
    try:
        return handler(options, out)
    except BrokenPipeError:  # e.g. piped into `head`
        return 0


if __name__ == "__main__":
    sys.exit(main())
