"""Command-line interface: compile, inspect, run and trace Id-like programs.

::

    python -m repro run program.id --args 0.0 1.0 32 0.03125
    python -m repro run program.id --engine machine --pes 8 --latency 10
    python -m repro run program.id --engine machine --metrics metrics.json
    python -m repro trace program.id --out run.trace.json   # open in Perfetto
    python -m repro graph program.id            # text listing (Fig 2-2 style)
    python -m repro graph program.id --dot      # Graphviz DOT on stdout
    python -m repro stats program.id            # structural statistics
    python -m repro profile program.id --engine machine   # causal profile
    python -m repro profile program.id --flow flow.json   # Perfetto overlay
    python -m repro bench --jobs 4 --only e07   # parallel experiment sweep
    python -m repro bench --only e07 --check    # regression gate vs baseline
    python -m repro machine                     # list registered machines
    python -m repro machine ultracomputer --set stages=5 --workload spacing=0.5

The entry procedure defaults to the first ``def`` in the file; override
with ``--entry``.
"""

import argparse
import json
import sys

from .dataflow import Interpreter, MachineConfig, TaggedTokenMachine
from .graph import format_program, graph_statistics, optimize_program, to_dot
from .lang import compile_source
from .obs import ChromeTraceSink, JsonlSink, TraceBus

__all__ = ["main", "build_parser"]


def _parse_value(text):
    """Interpret a CLI argument as int, float, bool, or bare string."""
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    return text


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tagged-token dataflow tools (Arvind & Iannucci, 1983)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compile and execute a program")
    run.add_argument("file", help="Id-like source file")
    run.add_argument("--entry", default=None, help="entry procedure name")
    run.add_argument("--args", nargs="*", default=[],
                     help="arguments for the entry procedure")
    run.add_argument("--engine", choices=("interp", "machine", "vn"),
                     default="interp",
                     help="execution engine (vn = sequential von Neumann "
                          "backend, integer programs only)")
    run.add_argument("--pes", type=int, default=4,
                     help="PE count (machine engine)")
    run.add_argument("--latency", type=float, default=4.0,
                     help="network latency in cycles (machine engine)")
    run.add_argument("--json", action="store_true",
                     help="emit machine-readable JSON")
    run.add_argument("--optimize", action="store_true",
                     help="run the peephole optimizer before executing")
    run.add_argument("--profile", action="store_true",
                     help="print the parallelism profile "
                          "(interpreter engine only)")
    run.add_argument("--metrics", metavar="FILE", default=None,
                     help="dump a metrics snapshot as JSON (any engine)")
    run.add_argument("--trace", metavar="FILE", default=None,
                     help="write a JSONL event trace (timed engines: "
                          "machine, vn)")

    trace = sub.add_parser(
        "trace",
        help="run on the timed machine and export an event timeline",
    )
    trace.add_argument("file", help="Id-like source file")
    trace.add_argument("--out", required=True,
                       help="output path for the trace file")
    trace.add_argument("--entry", default=None)
    trace.add_argument("--args", nargs="*", default=[])
    trace.add_argument("--engine", choices=("machine", "vn"),
                       default="machine")
    trace.add_argument("--pes", type=int, default=4)
    trace.add_argument("--latency", type=float, default=4.0)
    trace.add_argument("--optimize", action="store_true")
    trace.add_argument("--format", choices=("chrome", "jsonl"),
                       default="chrome",
                       help="chrome = trace_event JSON for Perfetto / "
                            "chrome://tracing; jsonl = one event per line")

    graph = sub.add_parser("graph", help="print the compiled dataflow graph")
    graph.add_argument("file")
    graph.add_argument("--entry", default=None)
    graph.add_argument("--dot", action="store_true",
                       help="emit Graphviz DOT instead of a text listing")
    graph.add_argument("--optimize", action="store_true")

    stats = sub.add_parser("stats", help="structural statistics of the graph")
    stats.add_argument("file")
    stats.add_argument("--entry", default=None)
    stats.add_argument("--optimize", action="store_true")

    profile = sub.add_parser(
        "profile",
        help="causal profile: cycle accounting + simulated critical path",
    )
    profile.add_argument("file", help="Id-like source file")
    profile.add_argument("--entry", default=None,
                         help="entry procedure (default: last def)")
    profile.add_argument("--args", nargs="*", default=[],
                         help="arguments (default: 8 per parameter)")
    profile.add_argument("--engine", choices=("machine", "vn"),
                         default="machine",
                         help="timed engine to profile")
    profile.add_argument("--pes", type=int, default=4,
                         help="PE count (machine engine)")
    profile.add_argument("--latency", type=float, default=4.0,
                         help="network latency in cycles")
    profile.add_argument("--optimize", action="store_true")
    profile.add_argument("--path-nodes", type=int, default=12,
                         metavar="N",
                         help="critical-path events to print (default 12)")
    profile.add_argument("--json", action="store_true",
                         help="emit the full profile as JSON on stdout")
    profile.add_argument("--out", metavar="FILE", default=None,
                         help="also write the profile JSON to FILE")
    profile.add_argument("--flow", metavar="FILE", default=None,
                         help="write a Chrome trace with the critical path "
                              "overlaid as flow events (open in Perfetto)")

    bench = sub.add_parser(
        "bench",
        help="run the experiment suite through the parallel sweep engine",
    )
    bench.add_argument("--only", default=None, metavar="SUBSTRING",
                       help="run only experiments whose module or table "
                            "name contains SUBSTRING")
    bench.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes (default: cpu count; "
                            "0 = inline)")
    bench.add_argument("--no-cache", action="store_true",
                       help="ignore and do not update the result cache")
    bench.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-run timeout before terminate + one retry")
    bench.add_argument("--bench-dir", default=None, metavar="DIR",
                       help="benchmarks directory (default: auto-detect)")
    bench.add_argument("--trace", metavar="FILE", default=None,
                       help="write sweep progress events as JSONL")
    bench.add_argument("--check", action="store_true",
                       help="compare the fresh sweep against committed "
                            "baselines; exit nonzero on regression")
    bench.add_argument("--update-baselines", action="store_true",
                       help="(re)write the baseline files from this sweep")
    bench.add_argument("--baseline-dir", default=None, metavar="DIR",
                       help="baseline directory "
                            "(default: <benchmarks>/baselines)")
    bench.add_argument("--check-out", metavar="FILE", default=None,
                       help="write the structured check result as JSON")
    bench.add_argument("--faults", metavar="PLAN", default=None,
                       help="fault-plan JSON file; fault-aware sweeps "
                            "(e20) read it (and its optional 'levels' "
                            "list) while building their grids")

    machine = sub.add_parser(
        "machine",
        help="construct a registered machine model and run one workload",
    )
    machine.add_argument("name", nargs="?", default=None,
                         help="registry name (omit to list the registry)")
    machine.add_argument("--set", dest="config", nargs="*", default=[],
                         metavar="KEY=VALUE",
                         help="constructor config, e.g. stages=5")
    machine.add_argument("--workload", nargs="*", default=[],
                         metavar="KEY=VALUE",
                         help="run() arguments, e.g. workload=graph rounds=4")
    machine.add_argument("--faults", metavar="PLAN", default=None,
                         help="fault-plan JSON file passed to the model "
                              "as faults=...")
    machine.add_argument("--json", action="store_true",
                         help="emit the SimResult as JSON")
    return parser


def _load(path, entry, optimize=False):
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    program = compile_source(source, entry=entry)
    if optimize:
        program = optimize_program(program)
    return program


def _make_trace_bus(options):
    """(bus, sink) for ``run --trace FILE``; (None, None) when off."""
    trace_path = getattr(options, "trace", None)
    if trace_path is None:
        return None, None
    if options.engine == "interp":
        raise SystemExit(
            "--trace needs a timed engine (the interpreter has no clock); "
            "use --engine machine or --engine vn"
        )
    bus = TraceBus()
    sink = bus.add_sink(JsonlSink(trace_path))
    return bus, sink


def _write_metrics(options, snapshot, out):
    path = getattr(options, "metrics", None)
    if path is None:
        return
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True, default=repr)
        fh.write("\n")
    print(f"metrics: {len(snapshot)} value(s) -> {path}", file=out)


def _cmd_run(options, out):
    args = [_parse_value(a) for a in options.args]
    bus, trace_sink = _make_trace_bus(options)
    if options.engine == "vn":
        from .vonneumann import run_sequential

        with open(options.file, "r", encoding="utf-8") as fh:
            source = fh.read()
        value, result = run_sequential(source, tuple(args),
                                       entry=options.entry,
                                       latency=options.latency,
                                       trace_bus=bus)
        payload = {
            "result": value,
            "engine": f"von Neumann uniprocessor [latency "
                      f"{options.latency}]",
            "time_cycles": result.time,
            "instructions": result.instructions,
            "utilization": round(result.mean_utilization, 4),
        }
        snapshot = {
            "engine": "vn",
            "time_cycles": result.time,
            "instructions": result.instructions,
            "utilization": result.mean_utilization,
        }
        snapshot.update(
            {f"counters.{k}": v for k, v in sorted(result.counters.items())}
        )
    else:
        program = _load(options.file, options.entry, options.optimize)
        if options.engine == "interp":
            interp = Interpreter(program)
            value = interp.run(*args)
            payload = {
                "result": value,
                "engine": "interpreter",
                "instructions": interp.instructions_executed,
                "critical_path": interp.critical_path,
                "average_parallelism": round(interp.average_parallelism(), 3),
            }
            snapshot = {
                "engine": "interp",
                "instructions": interp.instructions_executed,
                "critical_path": interp.critical_path,
                "average_parallelism": interp.average_parallelism(),
            }
        else:
            config = MachineConfig(n_pes=options.pes,
                                   network_latency=options.latency,
                                   trace_bus=bus)
            machine = TaggedTokenMachine(program, config)
            result = machine.run(*args)
            payload = {
                "result": result.value,
                "engine": f"machine[{options.pes} PEs, latency "
                          f"{options.latency}]",
                "time_cycles": result.time,
                "instructions": result.instructions,
                "mean_alu_utilization": round(result.mean_alu_utilization, 4),
                "network_tokens": result.counters.get("tokens_network", 0),
            }
            snapshot = machine.metrics_snapshot()
            snapshot["engine"] = "machine"
    if options.json:
        print(json.dumps(payload), file=out)
    else:
        print(f"result: {payload.pop('result')!r}", file=out)
        for key, value in payload.items():
            print(f"  {key}: {value}", file=out)
    if trace_sink is not None:
        trace_sink.close()
        print(f"trace: {trace_sink.written} event(s) -> {options.trace}",
              file=out)
    _write_metrics(options, snapshot, out)
    if options.engine == "interp" and getattr(options, "profile", False):
        print("parallelism profile (instructions ready per step):", file=out)
        profile = interp.parallelism_profile
        peak = max(profile.values())
        for step in sorted(profile):
            count = profile[step]
            bar = "#" * max(1, round(40 * count / peak))
            print(f"  t={step:<5} {bar} {count}", file=out)
    return 0


DEMO_ARGUMENT = 8  # stands in for omitted `trace` arguments


def _trace_defaults(options):
    """Fill in entry/args so a bare ``repro trace file --out t.json`` works.

    With no ``--entry``, trace the *last* procedure in the file — demo
    files define helpers first and the interesting program last (for
    ``run`` the historical first-def default stands).  With no ``--args``,
    every parameter gets :data:`DEMO_ARGUMENT`, a value small enough to
    finish fast and large enough to drive loops around a few times.
    """
    from .lang import parse

    with open(options.file, "r", encoding="utf-8") as fh:
        ast = parse(fh.read())
    entry = options.entry
    if entry is None:
        entry = ast.defs[-1].name
    args = [_parse_value(a) for a in options.args]
    if not args:
        definition = next(d for d in ast.defs if d.name == entry)
        args = [DEMO_ARGUMENT] * len(definition.params)
    return entry, args


def _cmd_trace(options, out):
    """Run on a timed engine with a trace sink and export the timeline."""
    entry, args = _trace_defaults(options)
    options.entry = entry
    bus = TraceBus()
    if options.format == "chrome":
        sink = bus.add_sink(ChromeTraceSink())
    else:
        sink = bus.add_sink(JsonlSink(options.out))
    if options.engine == "vn":
        from .vonneumann import run_sequential

        with open(options.file, "r", encoding="utf-8") as fh:
            source = fh.read()
        value, result = run_sequential(source, tuple(args),
                                       entry=options.entry,
                                       latency=options.latency,
                                       trace_bus=bus)
        time_cycles, instructions = result.time, result.instructions
    else:
        program = _load(options.file, options.entry, options.optimize)
        config = MachineConfig(n_pes=options.pes,
                               network_latency=options.latency,
                               trace_bus=bus)
        machine = TaggedTokenMachine(program, config)
        result = machine.run(*args)
        value = result.value
        time_cycles, instructions = result.time, result.instructions
    if options.format == "chrome":
        sink.write(options.out, meta={
            "source": options.file,
            "engine": options.engine,
            "args": [repr(a) for a in args],
        })
        events = len(sink)
    else:
        sink.close()
        events = sink.written
    print(f"result: {value!r}", file=out)
    print(f"  time_cycles: {time_cycles}", file=out)
    print(f"  instructions: {instructions}", file=out)
    print(f"  trace: {events} event(s) -> {options.out} "
          f"[{options.format}]", file=out)
    if options.format == "chrome":
        print("  view: load the file at https://ui.perfetto.dev or "
              "chrome://tracing", file=out)
    return 0


def _cmd_profile(options, out):
    """Run under provenance tracing; report accounting + critical path."""
    from .obs import RingSink
    from .obs.analysis import build_profile, chrome_flow_events

    entry, args = _trace_defaults(options)
    options.entry = entry
    bus = TraceBus(provenance=True)
    ring = bus.add_sink(RingSink(limit=None))
    chrome = bus.add_sink(ChromeTraceSink()) if options.flow else None

    if options.engine == "vn":
        from .obs.analysis import vn_accounting
        from .vonneumann import run_sequential

        with open(options.file, "r", encoding="utf-8") as fh:
            source = fh.read()
        value, result, machine = run_sequential(
            source, tuple(args), entry=entry, latency=options.latency,
            trace_bus=bus, return_machine=True)
        accounting = vn_accounting(machine, result, name="vn")
    else:
        from .obs.analysis import ttda_accounting

        program = _load(options.file, entry, options.optimize)
        config = MachineConfig(n_pes=options.pes,
                               network_latency=options.latency,
                               trace_bus=bus)
        machine = TaggedTokenMachine(program, config)
        result = machine.run(*args)
        value = result.value
        accounting = ttda_accounting(machine)
    meta = {
        "source": options.file,
        "engine": options.engine,
        "entry": entry,
        "args": [repr(a) for a in args],
        "result": value,
        "time_cycles": result.time,
        "instructions": result.instructions,
    }
    report = build_profile(ring.events, accounting, meta=meta)
    if options.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True,
                         default=repr), file=out)
    else:
        print(report.format(max_path_nodes=options.path_nodes), file=out)
    if options.out:
        with open(options.out, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True,
                      default=repr)
            fh.write("\n")
        print(f"profile json -> {options.out}", file=out)
    if chrome is not None:
        if report.path is not None:
            chrome.extend(chrome_flow_events(report.path, chrome.tid_of,
                                             cycle_us=chrome.cycle_us))
        chrome.write(options.flow, meta={
            "source": options.file,
            "engine": options.engine,
            "args": [repr(a) for a in args],
        })
        print(f"flow trace: {len(chrome)} event(s) -> {options.flow}",
              file=out)
        print("  view: load the file at https://ui.perfetto.dev or "
              "chrome://tracing", file=out)
    return 0


def _cmd_graph(options, out):
    program = _load(options.file, options.entry, options.optimize)
    if options.dot:
        print(to_dot(program, title=options.file), file=out)
    else:
        print(format_program(program), file=out)
    return 0


def _cmd_stats(options, out):
    program = _load(options.file, options.entry, options.optimize)
    print(json.dumps(graph_statistics(program), indent=2, sort_keys=True),
          file=out)
    return 0


def _parse_kv(pairs, what):
    """``["a=1", "b=true"]`` -> {"a": 1, "b": True} with typed values."""
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"{what} arguments must be KEY=VALUE, "
                             f"got {pair!r}")
        key, _, value = pair.partition("=")
        out[key] = _parse_value(value)
    return out


def _cmd_bench(options, out):
    """Run the benchmark suite through the repro.exp sweep engine."""
    from .exp.bench import run_suite
    from .obs import JsonlSink, TraceBus

    bus = None
    sink = None
    if options.trace:
        bus = TraceBus()
        sink = bus.add_sink(JsonlSink(options.trace))
    aggregate = run_suite(
        only=options.only,
        jobs=options.jobs,
        no_cache=options.no_cache,
        timeout=options.timeout,
        bench_dir=options.bench_dir,
        bus=bus,
        faults=options.faults,
    )
    if sink is not None:
        sink.close()
        print(f"sweep trace: {sink.written} event(s) -> {options.trace}",
              file=out)
    status = 1 if aggregate["failures"] else 0
    if options.update_baselines or options.check:
        import os

        from .exp.bench import find_bench_dir
        from .obs.analysis import check_suite, format_report, write_baselines

        baseline_dir = options.baseline_dir or os.path.join(
            find_bench_dir(options.bench_dir), "baselines")
        entries = aggregate["experiments"]
        if options.update_baselines:
            paths = write_baselines(entries, baseline_dir)
            print(f"baselines: {len(paths)} file(s) -> {baseline_dir}",
                  file=out)
        if options.check:
            result = check_suite(entries, baseline_dir)
            print(format_report(result), file=out)
            if options.check_out:
                with open(options.check_out, "w", encoding="utf-8") as fh:
                    json.dump(result, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                print(f"check result -> {options.check_out}", file=out)
            if not result["ok"]:
                status = 1
    return status


def _cmd_machine(options, out):
    """Uniformly construct and run any registered machine model."""
    from .machines import registry

    if options.name is None:
        for name in registry.names():
            cls = registry.get(name)
            doc = (cls.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:<20} {doc}", file=out)
        return 0
    config = _parse_kv(options.config, "--set")
    if options.faults is not None:
        from .faults import coerce_plan

        config["faults"] = coerce_plan(options.faults).as_dict()
    model = registry.create(options.name, **config)
    result = model.run(**_parse_kv(options.workload, "--workload"))
    if options.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True,
                         default=repr), file=out)
    else:
        print(f"machine: {result.machine}", file=out)
        for section in ("config", "workload", "metrics"):
            print(f"  {section}:", file=out)
            for key, value in sorted(getattr(result, section).items()):
                print(f"    {key}: {value}", file=out)
        if result.accounting is not None:
            from .obs.analysis import BUCKETS

            acct = result.profile()
            fractions = acct.fractions()
            print(f"  accounting: window {acct.window:g} cycles x "
                  f"{acct.n_units} unit(s)", file=out)
            for bucket in BUCKETS:
                print(f"    {bucket}: {acct.totals()[bucket]:g} "
                      f"({100.0 * fractions[bucket]:.2f}%)", file=out)
    return 0


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    options = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "graph": _cmd_graph,
        "stats": _cmd_stats,
        "bench": _cmd_bench,
        "machine": _cmd_machine,
    }[options.command]
    try:
        return handler(options, out)
    except BrokenPipeError:  # e.g. piped into `head`
        return 0


if __name__ == "__main__":
    sys.exit(main())
