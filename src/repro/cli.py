"""Command-line interface: compile, inspect and run Id-like programs.

::

    python -m repro run program.id --args 0.0 1.0 32 0.03125
    python -m repro run program.id --engine machine --pes 8 --latency 10
    python -m repro graph program.id            # text listing (Fig 2-2 style)
    python -m repro graph program.id --dot      # Graphviz DOT on stdout
    python -m repro stats program.id            # structural statistics

The entry procedure defaults to the first ``def`` in the file; override
with ``--entry``.
"""

import argparse
import json
import sys

from .dataflow import Interpreter, MachineConfig, TaggedTokenMachine
from .graph import format_program, graph_statistics, optimize_program, to_dot
from .lang import compile_source

__all__ = ["main", "build_parser"]


def _parse_value(text):
    """Interpret a CLI argument as int, float, bool, or bare string."""
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    return text


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tagged-token dataflow tools (Arvind & Iannucci, 1983)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compile and execute a program")
    run.add_argument("file", help="Id-like source file")
    run.add_argument("--entry", default=None, help="entry procedure name")
    run.add_argument("--args", nargs="*", default=[],
                     help="arguments for the entry procedure")
    run.add_argument("--engine", choices=("interp", "machine", "vn"),
                     default="interp",
                     help="execution engine (vn = sequential von Neumann "
                          "backend, integer programs only)")
    run.add_argument("--pes", type=int, default=4,
                     help="PE count (machine engine)")
    run.add_argument("--latency", type=float, default=4.0,
                     help="network latency in cycles (machine engine)")
    run.add_argument("--json", action="store_true",
                     help="emit machine-readable JSON")
    run.add_argument("--optimize", action="store_true",
                     help="run the peephole optimizer before executing")
    run.add_argument("--profile", action="store_true",
                     help="print the parallelism profile "
                          "(interpreter engine only)")

    graph = sub.add_parser("graph", help="print the compiled dataflow graph")
    graph.add_argument("file")
    graph.add_argument("--entry", default=None)
    graph.add_argument("--dot", action="store_true",
                       help="emit Graphviz DOT instead of a text listing")
    graph.add_argument("--optimize", action="store_true")

    stats = sub.add_parser("stats", help="structural statistics of the graph")
    stats.add_argument("file")
    stats.add_argument("--entry", default=None)
    stats.add_argument("--optimize", action="store_true")
    return parser


def _load(path, entry, optimize=False):
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    program = compile_source(source, entry=entry)
    if optimize:
        program = optimize_program(program)
    return program


def _cmd_run(options, out):
    args = [_parse_value(a) for a in options.args]
    if options.engine == "vn":
        from .vonneumann import run_sequential

        with open(options.file, "r", encoding="utf-8") as fh:
            source = fh.read()
        value, result = run_sequential(source, tuple(args),
                                       entry=options.entry,
                                       latency=options.latency)
        payload = {
            "result": value,
            "engine": f"von Neumann uniprocessor [latency "
                      f"{options.latency}]",
            "time_cycles": result.time,
            "instructions": result.instructions,
            "utilization": round(result.mean_utilization, 4),
        }
        if options.json:
            print(json.dumps(payload), file=out)
        else:
            print(f"result: {payload.pop('result')!r}", file=out)
            for key, value in payload.items():
                print(f"  {key}: {value}", file=out)
        return 0
    program = _load(options.file, options.entry, options.optimize)
    if options.engine == "interp":
        interp = Interpreter(program)
        value = interp.run(*args)
        payload = {
            "result": value,
            "engine": "interpreter",
            "instructions": interp.instructions_executed,
            "critical_path": interp.critical_path,
            "average_parallelism": round(interp.average_parallelism(), 3),
        }
    else:
        config = MachineConfig(n_pes=options.pes,
                               network_latency=options.latency)
        machine = TaggedTokenMachine(program, config)
        result = machine.run(*args)
        payload = {
            "result": result.value,
            "engine": f"machine[{options.pes} PEs, latency "
                      f"{options.latency}]",
            "time_cycles": result.time,
            "instructions": result.instructions,
            "mean_alu_utilization": round(result.mean_alu_utilization, 4),
            "network_tokens": result.counters.get("tokens_network", 0),
        }
    if options.json:
        print(json.dumps(payload), file=out)
    else:
        print(f"result: {payload.pop('result')!r}", file=out)
        for key, value in payload.items():
            print(f"  {key}: {value}", file=out)
    if options.engine == "interp" and getattr(options, "profile", False):
        print("parallelism profile (instructions ready per step):", file=out)
        profile = interp.parallelism_profile
        peak = max(profile.values())
        for step in sorted(profile):
            count = profile[step]
            bar = "#" * max(1, round(40 * count / peak))
            print(f"  t={step:<5} {bar} {count}", file=out)
    return 0


def _cmd_graph(options, out):
    program = _load(options.file, options.entry, options.optimize)
    if options.dot:
        print(to_dot(program, title=options.file), file=out)
    else:
        print(format_program(program), file=out)
    return 0


def _cmd_stats(options, out):
    program = _load(options.file, options.entry, options.optimize)
    print(json.dumps(graph_statistics(program), indent=2, sort_keys=True),
          file=out)
    return 0


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    options = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "graph": _cmd_graph,
        "stats": _cmd_stats,
    }[options.command]
    try:
        return handler(options, out)
    except BrokenPipeError:  # e.g. piped into `head`
        return 0


if __name__ == "__main__":
    sys.exit(main())
