"""E12 — the waiting–matching section tracks exposed parallelism (§2.2.3).

"When a match is expected but not found, the token remains in the
waiting-matching unit's associative memory until its partner arrives."
The associative store is the hardware budget for exposed parallelism:
the more iterations/calls in flight, the more first-operand tokens parked
awaiting partners.  We sweep problem size and PE count and record mean and
peak occupancy.
"""

from repro.analysis import Table
from repro.dataflow import MachineConfig, TaggedTokenMachine
from repro.workloads import compile_workload


def run_point(workload, args, n_pes=4):
    program, _, _ = compile_workload(workload)
    machine = TaggedTokenMachine(program, MachineConfig(n_pes=n_pes))
    result = machine.run(*args)
    mean_occ, peak_occ = machine.matching_store_occupancy()
    return result, mean_occ, peak_occ


def run_experiment(sizes=(3, 4, 5, 6), n_pes=4):
    table = Table(
        "E12  Waiting-matching store occupancy vs exposed parallelism "
        "(paper §2.2.3)",
        ["matmul n", "instructions", "time", "mean waiting tokens",
         "peak waiting tokens", "tokens parked"],
        notes=[f"{n_pes} PEs; occupancy summed over the machine"],
    )
    for n in sizes:
        result, mean_occ, peak_occ = run_point("matmul", (n,), n_pes)
        table.add_row(n, result.instructions, result.time, mean_occ, peak_occ,
                      result.counters.get("tokens_parked", 0))
    return table


def pe_sweep(n=5, pe_counts=(1, 2, 4, 8)):
    table = Table(
        "E12b  Occupancy concentration vs PE count",
        ["PEs", "mean waiting tokens (machine)", "peak waiting tokens (one PE)"],
        notes=["total exposed parallelism is a program property; per-PE "
               "associative stores share the load as PEs are added"],
    )
    for n_pes in pe_counts:
        _, mean_occ, peak_occ = run_point("matmul", (n,), n_pes)
        table.add_row(n_pes, mean_occ, peak_occ)
    return table


def test_e12_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=((3, 5),), rounds=1,
                               iterations=1)
    means = [float(x) for x in table.column("mean waiting tokens")]
    peaks = [float(x) for x in table.column("peak waiting tokens")]
    # Bigger problems expose more parallelism => more parked tokens.
    assert means[-1] > means[0]
    assert peaks[-1] >= peaks[0]


def test_e12b_shape(benchmark):
    table = benchmark.pedantic(pe_sweep, kwargs={"n": 4,
                                                 "pe_counts": (1, 8)},
                               rounds=1, iterations=1)
    peaks = [float(x) for x in
             table.column("peak waiting tokens (one PE)")]
    # Spreading activities over 8 PEs lowers the worst single store.
    assert peaks[1] < peaks[0]


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e12_matching_store")
    write_table(pe_sweep(), "e12b_matching_store_pes")
