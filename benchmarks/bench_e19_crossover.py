"""E19 (extension) — the engineering question the paper begs: *when* does
dataflow win?

E16 showed the tagged-token machine executes ~2x the instructions for the
same algorithm; E1 showed it tolerates latency.  Head-to-head on the same
computation (summing the squares 1..n), with both machines in the same
cycle units, two workload shapes give opposite answers:

* a **serial-chain** sum (accumulator loop) — the dataflow machine *never*
  wins: its loop-control and accumulator chains pay the network latency
  per iteration just like the stalling processor, and it carries the
  sequencing overhead on top.  This is the paper's own caveat made
  quantitative: latency is tolerated only "given that the program being
  executed is sufficiently parallel" (§2.3);
* a **tree reduction** of the same values — parallelism O(n/log n): the
  dataflow machine's time grows sub-linearly in latency and crosses below
  the von Neumann time partway through the sweep.

The uniprocessor comparator runs the linear loop in both cases — one
processor cannot extract parallelism from a tree.
"""

from repro.analysis import Table, crossover_point
from repro.dataflow import MachineConfig, TaggedTokenMachine
from repro.lang import compile_source
from repro.vonneumann import run_sequential

LATENCIES = [1, 2, 4, 8, 16, 32, 64]

_SERIAL_SOURCE = """
def produce(a, n) =
  (initial k <- 0
   while k < n do
     a[k] <- k * k;
     new k <- k + 1
   return 0);

def consume(a, n) =
  (initial k <- 0; s <- 0
   while k < n do
     new s <- s + a[k];
     new k <- k + 1
   return s);

def main(n) =
  let a = array(n) in
  let t = produce(a, n) in
  consume(a, n);
"""

_TREE_SOURCE = """
def fill(a, lo, hi) =
  if hi - lo == 1
  then (initial q <- 0
        while q < 1 do
          a[lo] <- lo * lo;
          new q <- q + 1
        return 0)
  else let mid = floor((lo + hi) / 2) in
       fill(a, lo, mid) + fill(a, mid, hi);

def tree_sum(a, lo, hi) =
  if hi - lo == 1 then a[lo]
  else let mid = floor((lo + hi) / 2) in
       tree_sum(a, lo, mid) + tree_sum(a, mid, hi);

def main(n) =
  let a = array(n) in
  let t = fill(a, 0, n) in
  tree_sum(a, 0, n);
"""


def run_von_neumann_compiled(latency, n):
    """The *same source*, compiled by the sequential backend onto one
    stalling processor (see ``repro.vonneumann.idl_compiler``)."""
    value, result = run_sequential(_SERIAL_SOURCE, (n,), entry="main",
                                   latency=latency, memory_time=1)
    assert value == sum(k * k for k in range(n))
    return result.time


def run_von_neumann_hand(latency, n):
    """Hand-tuned assembly for the same computation: the uniprocessor's
    best case (a human register allocator, no redundant moves)."""
    from repro.vonneumann import VNMachine

    machine = VNMachine(1, memory="dancehall", latency=latency, memory_time=1)
    machine.add_processor(f"""
        movi r2, 100
        movi r3, 0
        movi r4, {n}
        movi r7, 0
    prod:
        beq  r3, r4, cons_init
        mul  r5, r3, r3
        store r5, r2, 0
        addi r2, r2, 1
        addi r3, r3, 1
        jmp  prod
    cons_init:
        movi r2, 100
        movi r3, 0
    cons:
        beq  r3, r4, done
        load r5, r2, 0
        add  r7, r7, r5
        addi r2, r2, 1
        addi r3, r3, 1
        jmp  cons
    done:
        movi r2, 99
        store r7, r2, 0
        halt
    """)
    result = machine.run()
    assert machine.peek(99) == sum(k * k for k in range(n))
    return result.time


def run_dataflow(source, latency, n, n_pes=8):
    program = compile_source(source, entry="main")
    machine = TaggedTokenMachine(
        program, MachineConfig(n_pes=n_pes, network_latency=latency)
    )
    result = machine.run(n)
    assert result.value == sum(k * k for k in range(n))
    return result.time


def run_experiment(latencies=LATENCIES, n=32, n_pes=8):
    table = Table(
        "E19  Head-to-head: stalling uniprocessor vs tagged-token machine, "
        "serial chain vs tree reduction",
        ["latency", "vN hand", "vN compiled", "df serial", "df tree",
         "tree wins"],
        notes=[
            f"sum of squares of a {n}-element array; {n_pes} dataflow PEs",
            "same cycle units: 1-cycle functional units and memories",
            "'vN hand' = hand-tuned assembly; 'vN compiled' = the same Id "
            "source through the sequential backend",
        ],
    )
    hand_series = []
    tree_series = []
    for latency in latencies:
        hand_time = run_von_neumann_hand(latency, n)
        compiled_time = run_von_neumann_compiled(latency, n)
        serial_time = run_dataflow(_SERIAL_SOURCE, latency, n, n_pes)
        tree_time = run_dataflow(_TREE_SOURCE, latency, n, n_pes)
        hand_series.append((latency, tree_time))
        tree_series.append((latency, hand_time))
        table.add_row(latency, hand_time, compiled_time, serial_time,
                      tree_time, tree_time < hand_time)
    crossover = crossover_point(hand_series, tree_series)
    table.note(
        "tree reduction overtakes even the hand-tuned uniprocessor at "
        "latency " + (f"<= {crossover}" if crossover is not None
                      else "> sweep")
    )
    table.note(
        "the serial-chain dataflow version NEVER wins against hand-tuned "
        "code: latency tolerance requires program parallelism "
        "(the paper's §2.3 caveat)"
    )
    return table


def test_e19_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=([1, 16, 64],),
                               rounds=1, iterations=1)
    hand = [float(x) for x in table.column("vN hand")]
    compiled = [float(x) for x in table.column("vN compiled")]
    serial = [float(x) for x in table.column("df serial")]
    tree = [float(x) for x in table.column("df tree")]
    wins = table.column("tree wins")
    # Serial-chain dataflow never beats hand-tuned sequential code.
    assert all(s > h for s, h in zip(serial, hand))
    # The tree version starts behind the hand-tuned code (overhead) and
    # crosses over as latency grows.
    assert wins[0] == "no"
    assert wins[-1] == "yes"
    # Latency sensitivity: both vN variants linear, tree sub-linear.
    assert hand[-1] / hand[0] > 5
    assert tree[-1] / tree[0] < 0.5 * hand[-1] / hand[0]
    # The compiled comparator is honest: same source, modest code-quality
    # penalty relative to hand assembly.
    assert all(c >= h for c, h in zip(compiled, hand))
    assert compiled[0] < 2 * hand[0]


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e19_crossover")
