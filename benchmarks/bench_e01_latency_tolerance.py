"""E1 — Issue 1: the ability to tolerate memory latency (§1.1).

Claim reproduced: a von Neumann processor's utilization collapses as
memory latency grows (it idles on every reference), while the tagged-token
machine's completion time barely moves, because "data flow provides a
means whereby a processing element can issue many simultaneous memory
requests, can tolerate long latencies ..., and can deal with responses
that arrive out of order" (§2.3).

Both machines sweep the same one-way network latency.  The von Neumann
column is a single-context processor with a 4:1 compute-to-load ratio; the
dataflow column runs the (parallel) matmul workload on 4 PEs through an
equally slow network.

Ported to the sweep engine: each latency point runs both machines in one
pure worker; the slowdown columns (relative to the first latency) are
computed at assembly time.
"""

from repro.analysis import Table, von_neumann_utilization
from repro.exp import Experiment
from repro.machines import registry
from repro.vonneumann import VNMachine, programs

LATENCIES = [1, 2, 5, 10, 20, 50, 100]


def run_von_neumann(latency, iterations=60, alu_per_load=4):
    machine = VNMachine(1, memory="dancehall", latency=latency, memory_time=1)
    machine.add_processor(
        programs.compute_loop(iterations, loads_per_iter=1,
                              alu_ops_per_iter=alu_per_load)
    )
    result = machine.run()
    return result.time, result.utilizations[0]


def run_dataflow(latency, n=5, n_pes=4):
    model = registry.create("ttda", n_pes=n_pes, network_latency=latency)
    return model.run(workload="matmul", args=(n,)).metric("time")


def run_point(config):
    """Both machines at one latency; slowdown bases come at assembly."""
    latency = config["latency"]
    vn_time, vn_util = run_von_neumann(latency)
    df_time = run_dataflow(latency)
    return [latency, vn_time, vn_util, df_time]


def _assemble(experiment, values):
    table = Table(
        "E1  Latency tolerance: von Neumann stall vs dataflow overlap "
        "(paper §1.1 Issue 1, §2.3)",
        ["latency", "vN util", "vN util (model)", "vN slowdown",
         "dataflow slowdown"],
        notes=[
            "slowdowns are relative to the latency=1 run of the same machine",
            "vN model: r/(r+L_roundtrip), r = cycles of work per reference",
        ],
    )
    vn_base = values[0][1]
    df_base = values[0][3]
    for latency, vn_time, vn_util, df_time in values:
        # useful cycles per reference: 1 load issue + 4 alu + ~2 loop ctrl
        model = von_neumann_utilization(7, 2 * latency + 1)
        table.add_row(latency, vn_util, model, vn_time / vn_base,
                      df_time / df_base)
    return table


def build_sweep(latencies=LATENCIES):
    return Experiment(
        name="e01_latency_tolerance",
        run=run_point,
        grid=[{"latency": latency} for latency in latencies],
        assemble=_assemble,
    )


SWEEPS = {"e01_latency_tolerance": build_sweep()}


def run_experiment(latencies=LATENCIES):
    experiment = build_sweep(latencies)
    return experiment.table(experiment.run_inline())


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

def test_e01_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=([1, 10, 50],),
                               rounds=1, iterations=1)
    vn_slow = [float(x) for x in table.column("vN slowdown")]
    df_slow = [float(x) for x in table.column("dataflow slowdown")]
    vn_util = [float(x) for x in table.column("vN util")]
    # von Neumann: utilization collapses, time grows ~linearly with latency.
    assert vn_util[0] > 0.5 and vn_util[-1] < 0.1
    assert vn_slow[-1] > 5
    # dataflow: an order of magnitude less sensitive to the same latency.
    assert df_slow[-1] < vn_slow[-1] / 3
    assert df_slow[-1] < 2.5


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e01_latency_tolerance")
