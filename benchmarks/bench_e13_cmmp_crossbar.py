"""E13 — C.mmp: the crossbar circumvents latency, at quadratic cost
(§1.2.1).

"The switch speed was comparable to the speed of a local memory reference,
but the cost of building a larger switch which maintains the same
performance level grows at least quadratically.  This reliance on
technology doesn't solve the memory latency problem; it merely circumvents
it."  Plus the semaphore observation: "the performance cost of this
relative to, say, an ALU operation is rather high."

Ported to the sweep engine: each port count is one pure run through the
machine registry; the growth columns (relative to the smallest size) are
computed at assembly time.  The semaphore costing is a one-point sweep.
"""

from repro.analysis import Table
from repro.exp import Experiment
from repro.machines import registry

PORTS = [2, 4, 8, 16, 32]


def run_point(config):
    """One C.mmp array-sum run at a given crossbar size."""
    model = registry.create("cmmp", n_procs=config["ports"])
    result = model.run(workload="array_sum",
                       iterations=config.get("iterations", 40))
    return [
        result.metric("n_procs"),
        result.metric("crosspoints"),
        result.metric("mean_latency"),
        result.metric("mean_utilization"),
    ]


def _assemble(experiment, values):
    table = Table(
        "E13  C.mmp crossbar: cost vs latency scaling (paper §1.2.1)",
        ["ports", "crosspoints", "cost growth", "mean latency",
         "latency growth", "mean utilization"],
        notes=[
            "cost growth / latency growth are relative to the smallest size",
            "uniform disjoint-address workload (conflict-light)",
        ],
    )
    base_cost = values[0][1]
    base_latency = values[0][2]
    for n, cost, latency, utilization in values:
        table.add_row(n, cost, cost / base_cost, latency,
                      latency / base_latency, utilization)
    return table


def build_sweep(port_counts=PORTS):
    return Experiment(
        name="e13_cmmp_crossbar",
        run=run_point,
        grid=[{"ports": ports, "iterations": 40} for ports in port_counts],
        assemble=_assemble,
    )


def run_semaphore_point(config):
    """One Hydra-style semaphore costing run."""
    model = registry.create("cmmp", n_procs=config["n_procs"])
    result = model.run(workload="semaphore",
                       increments=config.get("increments", 16))
    return [
        result.metric("cycles_per_section"),
        result.metric("alu_cycles"),
        result.metric("ratio"),
    ]


def _assemble_semaphore(experiment, values):
    cycles, alu, ratio = values[0]
    table = Table(
        "E13b  Hydra-style semaphore cost (paper §1.2.1)",
        ["measurement", "value"],
    )
    table.add_row("cycles per lock-protected critical section", cycles)
    table.add_row("cycles per ALU operation", alu)
    table.add_row("ratio", ratio)
    return table


def build_semaphore(n_procs=8):
    return Experiment(
        name="e13b_semaphore_cost",
        run=run_semaphore_point,
        grid=[{"n_procs": n_procs, "increments": 16}],
        assemble=_assemble_semaphore,
    )


SWEEPS = {
    "e13_cmmp_crossbar": build_sweep(),
    "e13b_semaphore_cost": build_semaphore(),
}


def run_experiment(port_counts=PORTS):
    experiment = build_sweep(port_counts)
    return experiment.table(experiment.run_inline())


def semaphore_table(n_procs=8):
    experiment = build_semaphore(n_procs)
    return experiment.table(experiment.run_inline())


def test_e13_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=([2, 8, 32],), rounds=1,
                               iterations=1)
    cost_growth = [float(x) for x in table.column("cost growth")]
    latency_growth = [float(x) for x in table.column("latency growth")]
    # 16x the ports -> 256x the crosspoints, but latency within ~3x.
    assert cost_growth[-1] == 256.0
    assert latency_growth[-1] < 4.0


def test_e13b_shape(benchmark):
    table = benchmark.pedantic(semaphore_table, kwargs={"n_procs": 4},
                               rounds=1, iterations=1)
    ratio = float(table.rows[-1][1])
    assert ratio > 10


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e13_cmmp_crossbar")
    write_table(semaphore_table(), "e13b_semaphore_cost")
