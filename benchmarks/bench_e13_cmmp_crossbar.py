"""E13 — C.mmp: the crossbar circumvents latency, at quadratic cost
(§1.2.1).

"The switch speed was comparable to the speed of a local memory reference,
but the cost of building a larger switch which maintains the same
performance level grows at least quadratically.  This reliance on
technology doesn't solve the memory latency problem; it merely circumvents
it."  Plus the semaphore observation: "the performance cost of this
relative to, say, an ALU operation is rather high."
"""

from repro.analysis import Table
from repro.machines import crossbar_scaling_table, semaphore_cost

PORTS = [2, 4, 8, 16, 32]


def run_experiment(port_counts=PORTS):
    table = Table(
        "E13  C.mmp crossbar: cost vs latency scaling (paper §1.2.1)",
        ["ports", "crosspoints", "cost growth", "mean latency",
         "latency growth", "mean utilization"],
        notes=[
            "cost growth / latency growth are relative to the smallest size",
            "uniform disjoint-address workload (conflict-light)",
        ],
    )
    rows = crossbar_scaling_table(port_counts)
    base_cost = rows[0][1]
    base_latency = rows[0][2]
    for n, cost, latency, utilization in rows:
        table.add_row(n, cost, cost / base_cost, latency,
                      latency / base_latency, utilization)
    return table


def semaphore_table(n_procs=8):
    cycles, alu, ratio = semaphore_cost(n_procs=n_procs)
    table = Table(
        "E13b  Hydra-style semaphore cost (paper §1.2.1)",
        ["measurement", "value"],
    )
    table.add_row("cycles per lock-protected critical section", cycles)
    table.add_row("cycles per ALU operation", alu)
    table.add_row("ratio", ratio)
    return table


def test_e13_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=([2, 8, 32],), rounds=1,
                               iterations=1)
    cost_growth = [float(x) for x in table.column("cost growth")]
    latency_growth = [float(x) for x in table.column("latency growth")]
    # 16x the ports -> 256x the crosspoints, but latency within ~3x.
    assert cost_growth[-1] == 256.0
    assert latency_growth[-1] < 4.0


def test_e13b_shape(benchmark):
    table = benchmark.pedantic(semaphore_table, kwargs={"n_procs": 4},
                               rounds=1, iterations=1)
    ratio = float(table.rows[-1][1])
    assert ratio > 10


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e13_cmmp_crossbar")
    write_table(semaphore_table(), "e13b_semaphore_cost")
