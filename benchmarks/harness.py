"""Shared plumbing for the experiment benchmarks.

Every experiment module exposes ``run_experiment(...) -> Table`` (or a
small set of named runners).  The pytest-benchmark wrappers time a
representative configuration and assert the *shape* of the result — who
wins, by roughly what factor, where the crossover falls — mirroring the
claim-by-claim records in EXPERIMENTS.md.

Run any module directly (``python benchmarks/bench_e01_....py``) to print
its full table and write it under ``benchmarks/results/`` — a ``.txt``
rendering for humans and a ``.json`` telemetry file for tooling.
"""

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def table_rows(table):
    """A Table's rows as a list of {column: cell} dicts.

    Cells are the already-formatted strings the text rendering shows;
    numeric-looking cells are converted back to int/float so the JSON is
    usable for plotting without re-parsing.
    """
    rows = []
    for row in table.rows:
        entry = {}
        for column, cell in zip(table.columns, row):
            entry[column] = _parse_cell(cell)
        rows.append(entry)
    return rows


def _parse_cell(cell):
    if not isinstance(cell, str):
        return cell
    text = cell.strip()
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    if text.endswith("x"):  # speedup columns like "3.2x"
        try:
            return float(text[:-1])
        except ValueError:
            pass
    return text


def write_json(rows, name, meta=None):
    """Persist telemetry rows under benchmarks/results/<name>.json.

    ``rows`` is a list of dicts; ``meta`` (title, notes, timing, ...) is
    stored alongside them, never merged into the rows.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    payload = {"name": name, "meta": meta or {}, "rows": rows}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=repr)
        fh.write("\n")
    return path


def write_table(table, name, meta=None):
    """Print a table and persist it under benchmarks/results/ as both
    <name>.txt (the rendering) and <name>.json (rows + metadata)."""
    text = str(table)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    full_meta = {"title": table.title, "notes": list(table.notes)}
    if meta:
        full_meta.update(meta)
    write_json(table_rows(table), name, meta=full_meta)
    print(text)
    return path
