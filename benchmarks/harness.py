"""Shared plumbing for the experiment benchmarks.

Every experiment module exposes ``run_experiment(...) -> Table`` (or a
small set of named runners), and the parallel-sweep ones additionally
declare ``SWEEPS = {table_name: repro.exp.Experiment}`` so ``repro
bench`` / ``run_all.py`` can fan their grids out across workers.  The
pytest-benchmark wrappers time a representative configuration and assert
the *shape* of the result — who wins, by roughly what factor, where the
crossover falls — mirroring the claim-by-claim records in EXPERIMENTS.md.

Run any module directly (``python benchmarks/bench_e01_....py``) to print
its full table and write it under ``benchmarks/results/`` — a ``.txt``
rendering for humans and a ``.json`` telemetry file for tooling.

Cell parsing is the canonical :func:`repro.exp.tables.parse_cell`
(re-exported here as ``_parse_cell``): numeric-looking cells — including
``"inf"``, ``"nan"``, the ``"-"`` NaN rendering, and ``"1e3x"``-style
speedups — round-trip to floats instead of leaking into the JSON
telemetry as strings.
"""

import json
import os

from repro.exp.tables import parse_cell as _parse_cell
from repro.exp.tables import table_rows

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

__all__ = ["RESULTS_DIR", "table_rows", "write_json", "write_table"]


def write_json(rows, name, meta=None):
    """Persist telemetry rows under benchmarks/results/<name>.json.

    ``rows`` is a list of dicts; ``meta`` (title, notes, timing, ...) is
    stored alongside them, never merged into the rows.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    payload = {"name": name, "meta": meta or {}, "rows": rows}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=repr)
        fh.write("\n")
    return path


def write_table(table, name, meta=None):
    """Print a table and persist it under benchmarks/results/ as both
    <name>.txt (the rendering) and <name>.json (rows + metadata)."""
    text = str(table)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    full_meta = {"title": table.title, "notes": list(table.notes)}
    if meta:
        full_meta.update(meta)
    write_json(table_rows(table), name, meta=full_meta)
    print(text)
    return path
