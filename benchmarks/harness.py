"""Shared plumbing for the experiment benchmarks.

Every experiment module exposes ``run_experiment(...) -> Table`` (or a
small set of named runners).  The pytest-benchmark wrappers time a
representative configuration and assert the *shape* of the result — who
wins, by roughly what factor, where the crossover falls — mirroring the
claim-by-claim records in EXPERIMENTS.md.

Run any module directly (``python benchmarks/bench_e01_....py``) to print
its full table and write it under ``benchmarks/results/``.
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_table(table, name):
    """Print a table and persist it under benchmarks/results/<name>.txt."""
    text = str(table)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(text)
    return path
