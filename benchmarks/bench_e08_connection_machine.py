"""E8 — the Connection Machine: communication dominates (§1.2.5).

"It is clear that the speed of one bit ALU operations is irrelevant
because it will be insignificant in comparison with the communication time
- a processor will spend almost all (90%?, 99%?) of its time
communicating."

The SIMD model alternates bit-serial ALU phases with hypercube routing
phases under the global-completion-flag barrier.  Random-graph traffic
(the "applied artificial intelligence" workload the paper describes)
drives the communication fraction into exactly the 90-99% band; the
friendly nearest-neighbour pattern, and a 32x faster ALU, barely move it.
"""

from repro.analysis import Table
from repro.machines import IlliacIV, registry


def run_experiment(groups_log2=10, rounds=6):
    table = Table(
        "E8  Connection Machine: fraction of time spent communicating "
        "(paper §1.2.5)",
        ["pattern", "ALU bits/op", "groups", "comm fraction", "max link load",
         "mean hops"],
        notes=[
            "SIMD rounds of (bit-serial ALU op, message round, global barrier)",
            "the paper's estimate: 'almost all (90%?, 99%?) of its time'",
        ],
    )
    for pattern in ("neighbor", "random"):
        for word_bits in (32, 1):
            model = registry.create("connection_machine",
                                    groups_log2=groups_log2,
                                    word_bits=word_bits)
            result = model.run_graph_workload(rounds=rounds, pattern=pattern)
            table.add_row(pattern, word_bits, model.cm_config.n_groups,
                          result.comm_fraction, result.max_link_load,
                          result.mean_hops)
    return table


def illiac_table():
    model = IlliacIV()
    table = Table(
        "E8b  Illiac IV: uniform-shift serialization (paper §1.2.5)",
        ["transfer pattern", "shift instructions"],
        notes=["one instruction moves every processor one step in one "
               "direction; everyone waits for the farthest request"],
    )
    table.add_row("all east by 1", model.shifts_needed([(0, 1)] * 64))
    table.add_row("half east, half west",
                  model.shifts_needed([(0, 1)] * 32 + [(0, -1)] * 32))
    table.add_row("one corner-to-corner (7,7)",
                  model.shifts_needed([(0, 0)] * 63 + [(7, 7)]))
    return table


def test_e08_shape(benchmark):
    table = benchmark.pedantic(run_experiment, kwargs={"groups_log2": 8},
                               rounds=1, iterations=1)
    fractions = {
        (row[0], row[1]): float(row[3]) for row in table.rows
    }
    # Random graph traffic: inside the paper's 90-99% band.
    assert fractions[("random", "32")] > 0.9
    # A 32x faster ALU is irrelevant: fraction stays within a few percent.
    assert fractions[("random", "1")] > 0.95
    # Even neighbour traffic is communication-heavy on bit-serial links.
    assert fractions[("neighbor", "32")] > 0.4


def test_e08b_illiac(benchmark):
    table = benchmark.pedantic(illiac_table, rounds=1, iterations=1)
    shifts = [int(x) for x in table.column("shift instructions")]
    assert shifts[0] == 1  # uniform shift is one instruction
    assert shifts[1] == 2  # east+west serialize
    assert shifts[2] == 14  # everyone waits out the long transfer


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e08_connection_machine")
    write_table(illiac_table(), "e08b_illiac_iv")
