"""E15 — the emulation facility's hypercube network (§3, Fig 3-1).

"The network topology will be a seven dimensional hypercube ... chosen for
its flexibility.  Each switch module also includes a routing table which
allows the experimenter to specify any *emulated* topology which can be
mapped onto the hypercube.  The hardware has the capability of exploiting
the redundancy in the hypercube network for message routing and for fault
tolerance.  Table-based routing also allows the facility to be statically
partitioned into two or more smaller emulation machines."

Three demonstrations on a 7-cube (128 switch modules, as built):

* **emulation** — ring and grid embeddings where every emulated neighbour
  is exactly one physical hop;
* **fault tolerance** — random link failures, rerouted via tables built
  over the surviving links; all traffic still delivered;
* **partitioning** — the cube split into independent halves.
"""

import random

from repro.analysis import Table
from repro.common import Simulator
from repro.network import (
    HypercubeNetwork,
    build_shortest_path_table,
    emulated_neighbors,
    grid_embedding,
    ring_embedding,
)

DIMENSIONS = 7  # the facility as described: 2^7 = 128 modules


def embedding_stats(dimensions=DIMENSIONS):
    ring = ring_embedding(dimensions)
    ring_hops = [
        HypercubeNetwork.minimum_hops(a, b)
        for a, b in emulated_neighbors(ring, "ring")
    ]
    rows_log2 = dimensions // 2
    cols_log2 = dimensions - rows_log2
    grid = grid_embedding(rows_log2, cols_log2)
    grid_hops = [
        HypercubeNetwork.minimum_hops(a, b)
        for a, b in emulated_neighbors(grid, "grid")
    ]
    return ring_hops, grid_hops


def fault_tolerance_run(n_failures, dimensions=5, n_messages=60, seed=11):
    rng = random.Random(seed)
    sim = Simulator()
    net = HypercubeNetwork(sim, dimensions)
    edges = sorted({tuple(sorted(edge)) for edge in net.links})
    for a, b in rng.sample(edges, n_failures):
        net.fail_link(a, b)
    pairs = [
        (rng.randrange(net.n_ports), rng.randrange(net.n_ports))
        for _ in range(n_messages)
    ]
    pairs = [(s, d) for s, d in pairs if s != d]
    table = build_shortest_path_table(net, pairs=pairs)
    net.load_routing_table(table)
    received = []
    for port in range(net.n_ports):
        net.attach(port, received.append)
    for s, d in pairs:
        net.send(s, d, (s, d))
    sim.run()
    extra_hops = [
        p.hops - HypercubeNetwork.minimum_hops(p.src, p.dst) for p in received
    ]
    return len(pairs), len(received), sum(extra_hops) / len(received)


def partition_run(dimensions=4, per_partition_messages=24, seed=3):
    rng = random.Random(seed)
    sim = Simulator()
    net = HypercubeNetwork(sim, dimensions)
    half = net.n_ports // 2
    low = set(range(half))
    high = set(range(half, net.n_ports))
    net.set_partitions([low, high])
    received = []
    for port in range(net.n_ports):
        net.attach(port, received.append)
    for partition in (sorted(low), sorted(high)):
        for _ in range(per_partition_messages):
            s, d = rng.sample(partition, 2)
            net.send(s, d, None)
    sim.run()
    blocked = 0
    try:
        net.send(0, half, None)
    except Exception:
        blocked = 1
    return len(received), blocked


def run_experiment():
    table = Table(
        "E15  Emulation facility: hypercube routing tables, faults, "
        "partitions (paper §3)",
        ["demonstration", "result"],
        notes=["7-cube embeddings; fault runs on a 5-cube for speed"],
    )
    ring_hops, grid_hops = embedding_stats()
    table.add_row("ring embedding: max hops per emulated edge", max(ring_hops))
    table.add_row("grid embedding: max hops per emulated edge", max(grid_hops))
    for failures in (0, 4, 10):
        sent, delivered, extra = fault_tolerance_run(failures)
        table.add_row(
            f"{failures} failed links: delivered/sent",
            f"{delivered}/{sent} (mean detour {extra:.2f} hops)",
        )
    delivered, blocked = partition_run()
    table.add_row("partitioned halves: intra-partition delivered", delivered)
    table.add_row("partitioned halves: cross-partition sends blocked", blocked)
    return table


def test_e15_shape(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = dict((r[0], r[1]) for r in table.rows)
    assert rows["ring embedding: max hops per emulated edge"] == "1"
    assert rows["grid embedding: max hops per emulated edge"] == "1"
    for key, value in rows.items():
        if "failed links" in key:
            delivered, sent = value.split()[0].split("/")
            assert delivered == sent  # everything still arrives
    assert rows["partitioned halves: cross-partition sends blocked"] == "1"


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e15_emulation_facility")
