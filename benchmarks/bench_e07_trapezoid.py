"""E7 — Figure 2-2: the trapezoidal-rule loop, compiled and executed.

The paper compiles its ID program "which integrates a function f from a to
b over n intervals of size h by the trapezoidal rule" into the loop schema
of Figure 2-2 (D, D⁻¹, L, L⁻¹, switches, a reentrant graph).  This
experiment compiles the same program with our front end, checks the
numeric answer against scipy, and reports the graph's dynamic behaviour:
instructions, critical path, and average parallelism as the interval
count grows — the loop unfolding in tag space that justifies "given that
the program being executed is sufficiently parallel" (§2.3).
"""

import math

from repro.analysis import Table
from repro.dataflow import Interpreter, MachineConfig, TaggedTokenMachine
from repro.lang import compile_source
from repro.workloads import TRAPEZOID

INTERVALS = [4, 8, 16, 32, 64, 128]


def integrate(n, a=0.0, b=1.0):
    program = compile_source(TRAPEZOID, entry="trapezoid")
    h = (b - a) / n
    interp = Interpreter(program)
    value = interp.run(a, b, n, h)
    return value, interp


def scipy_reference(n, a=0.0, b=1.0):
    import numpy as np
    from scipy.integrate import trapezoid

    xs = np.linspace(a, b, n + 1)
    return float(trapezoid(1 / (1 + xs * xs), xs))


def run_experiment(interval_counts=INTERVALS):
    table = Table(
        "E7  Fig 2-2: trapezoidal rule on the dataflow machine "
        "(paper §2.2.1)",
        ["intervals", "result", "scipy", "error vs pi/4", "instructions",
         "critical path", "avg parallelism"],
        notes=[
            "f(x) = 1/(1+x^2) on [0,1]; exact integral is pi/4",
            "avg parallelism = instructions / critical path (unbounded PEs)",
        ],
    )
    for n in interval_counts:
        value, interp = integrate(n)
        reference = scipy_reference(n)
        assert abs(value - reference) < 1e-12, "engine disagrees with scipy"
        table.add_row(
            n, value, reference, abs(value - math.pi / 4),
            interp.instructions_executed, interp.critical_path,
            interp.average_parallelism(),
        )
    return table


def run_on_machine(n=32, n_pes=4):
    """The same program on the timed multi-PE machine."""
    program = compile_source(TRAPEZOID, entry="trapezoid")
    machine = TaggedTokenMachine(program, MachineConfig(n_pes=n_pes))
    h = 1.0 / n
    return machine.run(0.0, 1.0, n, h)


def test_e07_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=([4, 16, 64],),
                               rounds=1, iterations=1)
    errors = [float(x) for x in table.column("error vs pi/4")]
    par = [float(x) for x in table.column("avg parallelism")]
    # Quadrature converges as n grows; parallelism grows with the loop.
    assert errors[0] > errors[-1]
    assert errors[-1] < 1e-4
    assert par[-1] > par[0]
    assert par[-1] > 2.0


def test_e07_timed_machine(benchmark):
    result = benchmark.pedantic(run_on_machine, rounds=1, iterations=1)
    assert abs(result.value - scipy_reference(32)) < 1e-12
    assert result.time > 0


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e07_trapezoid")
