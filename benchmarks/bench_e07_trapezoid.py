"""E7 — Figure 2-2: the trapezoidal-rule loop, compiled and executed.

The paper compiles its ID program "which integrates a function f from a to
b over n intervals of size h by the trapezoidal rule" into the loop schema
of Figure 2-2 (D, D⁻¹, L, L⁻¹, switches, a reentrant graph).  This
experiment compiles the same program with our front end, checks the
numeric answer against scipy, and reports the graph's dynamic behaviour:
instructions, critical path, and average parallelism as the interval
count grows — the loop unfolding in tag space that justifies "given that
the program being executed is sufficiently parallel" (§2.3).

Ported to the sweep engine: each interval count is one pure run (compile,
interpret, scipy cross-check) so ``repro bench`` fans the grid out across
workers and caches converged points.
"""

import math

from repro.analysis import Table
from repro.dataflow import Interpreter
from repro.exp import Experiment
from repro.lang import compile_source
from repro.machines import registry
from repro.workloads import TRAPEZOID

INTERVALS = [4, 8, 16, 32, 64, 128]


def integrate(n, a=0.0, b=1.0):
    program = compile_source(TRAPEZOID, entry="trapezoid")
    h = (b - a) / n
    interp = Interpreter(program)
    value = interp.run(a, b, n, h)
    return value, interp


def scipy_reference(n, a=0.0, b=1.0):
    import numpy as np
    from scipy.integrate import trapezoid

    xs = np.linspace(a, b, n + 1)
    return float(trapezoid(1 / (1 + xs * xs), xs))


def run_point(config):
    """One interval count: integrate, cross-check, report graph dynamics."""
    n = config["intervals"]
    value, interp = integrate(n)
    reference = scipy_reference(n)
    assert abs(value - reference) < 1e-12, "engine disagrees with scipy"
    return [
        n, value, reference, abs(value - math.pi / 4),
        interp.instructions_executed, interp.critical_path,
        interp.average_parallelism(),
    ]


def _assemble(experiment, values):
    table = Table(
        "E7  Fig 2-2: trapezoidal rule on the dataflow machine "
        "(paper §2.2.1)",
        ["intervals", "result", "scipy", "error vs pi/4", "instructions",
         "critical path", "avg parallelism"],
        notes=[
            "f(x) = 1/(1+x^2) on [0,1]; exact integral is pi/4",
            "avg parallelism = instructions / critical path (unbounded PEs)",
        ],
    )
    for row in values:
        table.add_row(*row)
    return table


def build_sweep(interval_counts=INTERVALS):
    return Experiment(
        name="e07_trapezoid",
        run=run_point,
        grid=[{"intervals": n} for n in interval_counts],
        assemble=_assemble,
    )


SWEEPS = {"e07_trapezoid": build_sweep()}


def run_experiment(interval_counts=INTERVALS):
    experiment = build_sweep(interval_counts)
    return experiment.table(experiment.run_inline())


def run_on_machine(n=32, n_pes=4):
    """The same program on the timed multi-PE machine (via the registry)."""
    h = 1.0 / n
    model = registry.create("ttda", n_pes=n_pes)
    return model.run(workload="trapezoid", args=(0.0, 1.0, n, h))


def test_e07_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=([4, 16, 64],),
                               rounds=1, iterations=1)
    errors = [float(x) for x in table.column("error vs pi/4")]
    par = [float(x) for x in table.column("avg parallelism")]
    # Quadrature converges as n grows; parallelism grows with the loop.
    assert errors[0] > errors[-1]
    assert errors[-1] < 1e-4
    assert par[-1] > par[0]
    assert par[-1] > 2.0


def test_e07_timed_machine(benchmark):
    result = benchmark.pedantic(run_on_machine, rounds=1, iterations=1)
    assert abs(result.metric("value") - scipy_reference(32)) < 1e-12
    assert result.metric("time") > 0


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e07_trapezoid")
