"""E6 — deferred read lists vs HEP busy-waiting (footnote 2, §2.1).

The HEP "uses this idea [status bits per memory cell] to synchronize
cooperating parallel processes ... Unsatisfiable requests result in a
busy-waiting condition - i.e., there is no such thing as a deferred read
list."

The experiment: a consumer that runs ahead of a slow producer.  With
busy-waiting, every premature read is bounced and re-issued — memory and
network traffic multiply with the producer's slowness.  With I-structure
storage each premature read is parked once on the deferred list and
answered once, so traffic per element is constant regardless of timing.
"""

from repro.analysis import Table
from repro.dataflow import Interpreter
from repro.lang import compile_source
from repro.vonneumann import VNMachine, programs

#: Producer slowness sweep: filler ALU ops per element produced.
SLOWNESS = [0, 8, 32, 96]

_DATAFLOW_PIPELINE = """
def produce(a, n, w) =
  (initial k <- 0
   while k < n do
     a[k] <- k * (k + w - w);
     new k <- k + 1
   return 0);

def consume(a, n) =
  (initial k <- 0; s <- 0
   while k < n do
     new s <- s + a[k];
     new k <- k + 1
   return s);

def pipeline(n, w) =
  let a = array(n) in
  let t = produce(a, n, w) in
  consume(a, n);
"""


def run_hep(n, producer_work, retry_backoff=4):
    machine = VNMachine(2, memory="dancehall", latency=2, memory_time=1,
                        retry_backoff=retry_backoff)
    machine.add_processor(
        programs.producer_per_element(100, n, work_per_element=producer_work)
    )
    machine.add_processor(
        programs.consumer_per_element(100, n, 99, work_per_element=0)
    )
    result = machine.run()
    retries = result.counters.get("retries", 0)
    # `accesses` counts issues, so re-issued busy-wait reads are included.
    memory_requests = machine.memory.counters["accesses"]
    return result.time, retries, memory_requests / n


def run_istructure(n, producer_work):
    program = compile_source(_DATAFLOW_PIPELINE, entry="pipeline")
    interp = Interpreter(program)
    interp.run(n, producer_work)
    deferred = interp.heap.counters["reads_deferred"]
    immediate = interp.heap.counters["reads_immediate"]
    writes = interp.heap.counters["writes"]
    requests_per_element = (deferred + immediate + writes) / n
    return deferred, requests_per_element


def run_experiment(slowness=SLOWNESS, n=16):
    table = Table(
        "E6  Busy-waiting (HEP full/empty) vs I-structure deferred reads "
        "(paper footnote 2, §2.1)",
        ["producer work/elem", "HEP retries", "HEP mem reqs/elem",
         "I-structure deferrals", "I-structure mem reqs/elem"],
        notes=[
            f"{n}-element array; consumer does no per-element work",
            "HEP requests grow with producer slowness; I-structure requests "
            "stay at exactly (1 read + 1 write)/element",
        ],
    )
    for work in slowness:
        _, retries, hep_reqs = run_hep(n, work)
        deferred, is_reqs = run_istructure(n, work)
        table.add_row(work, retries, hep_reqs, deferred, is_reqs)
    return table


def test_e06_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=([0, 32, 96],),
                               rounds=1, iterations=1)
    retries = [int(x) for x in table.column("HEP retries")]
    hep_reqs = [float(x) for x in table.column("HEP mem reqs/elem")]
    is_reqs = [float(x) for x in table.column("I-structure mem reqs/elem")]
    # HEP retry traffic grows with producer slowness.
    assert retries[-1] > retries[0]
    assert retries[-1] > 50
    assert hep_reqs[-1] > 2 * hep_reqs[0]
    # I-structure traffic is flat at 2 requests per element.
    assert all(abs(r - 2.0) < 1e-9 for r in is_reqs)


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e06_busywait_vs_istructure")
