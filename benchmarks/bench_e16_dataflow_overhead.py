"""E16 (extension) — the price of the dataflow solution: overhead ops.

The paper presents tagged-token dataflow as the cure for Issues 1 and 2;
the contemporaneous critique of dataflow (which Arvind's group openly
engaged) is its *instruction overhead*: switches, tag manipulation (D,
D⁻¹, L, L⁻¹), gates and linkage are cycles a von Neumann machine does not
execute.  This experiment quantifies that overhead across the workload
library: the dynamic instruction mix by opcode class, and the fraction of
executed instructions doing arithmetic the programmer asked for.

This is the ablation DESIGN.md §5 calls "tagged matching vs static
dataflow" viewed from the cost side; it keeps the reproduction honest.
"""

from repro.analysis import Table
from repro.dataflow import Interpreter
from repro.workloads import WORKLOADS, compile_workload


def instruction_mix(name):
    program, _, args = compile_workload(name)
    interp = Interpreter(program)
    interp.run(*args)
    total = interp.counters["executed"]
    classes = {
        key[len("class_"):]: value
        for key, value in interp.counters.as_dict().items()
        if key.startswith("class_")
    }
    return total, classes


def run_experiment(names=None):
    names = sorted(WORKLOADS) if names is None else names
    table = Table(
        "E16  Dynamic instruction mix: the overhead of dataflow sequencing",
        ["workload", "total", "pure %", "control %", "tag %", "linkage %",
         "structure %", "useful fraction"],
        notes=[
            "pure = arithmetic/relational/logical; control = switch/gate/"
            "constant/sink; tag = D, D⁻¹, L, L⁻¹",
            "useful fraction = pure / total (a von Neumann loop has "
            "overhead too: branches, address arithmetic)",
        ],
    )
    for name in names:
        total, classes = instruction_mix(name)
        def pct(key):
            return 100.0 * classes.get(key, 0) / total

        table.add_row(
            name, total, pct("pure"), pct("control"), pct("tag"),
            pct("linkage"), pct("structure"),
            classes.get("pure", 0) / total,
        )
    return table


def test_e16_shape(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=(["trapezoid", "matmul", "fib", "pipeline"],),
        rounds=1, iterations=1,
    )
    useful = [float(x) for x in table.column("useful fraction")]
    tag_pct = [float(x) for x in table.column("tag %")]
    # The overhead is real: no workload is all-arithmetic, and loop-heavy
    # code pays double-digit tag-manipulation percentages.
    assert all(0.1 < u < 0.8 for u in useful)
    loop_heavy = dict(zip(table.column("workload"), tag_pct))
    assert float(loop_heavy["pipeline"]) > 10.0
    # Recursion pays in linkage instead of tags.
    mixes = dict(zip(table.column("workload"),
                     zip(tag_pct, [float(x) for x in
                                   table.column("linkage %")])))
    fib_tag, fib_linkage = mixes["fib"]
    assert fib_linkage > fib_tag


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e16_dataflow_overhead")
