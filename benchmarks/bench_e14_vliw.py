"""E14 — VLIW: effective at small scale, unable to cover dynamics (§1.2.4).

"We believe that this technique is effective in its currently-realized
context - special purpose computation with small scale (4 to 8)
parallelism, but the technique is not sufficiently general as to allow
significant scaling up."

Two measurements against an *oracle* VLIW (perfect static schedule of the
true dependence graph — more than any real compiler gets):

* issue-width sweep: speedup saturates right around the paper's 4-8;
* latency surprise: when memory takes longer than the schedule assumed,
  the lockstep machine eats the full excess per reference, while the
  tagged-token machine keeps overlapping.
"""

from repro.analysis import Table
from repro.dataflow import Interpreter, MachineConfig, TaggedTokenMachine
from repro.machines import registry
from repro.workloads import compile_workload

WIDTHS = [1, 2, 4, 8, 16, 32, 64]


def run_width_sweep(widths=WIDTHS, workload="trapezoid"):
    program, _, args = compile_workload(workload)
    interp = Interpreter(program)
    interp.run(*args)
    table = Table(
        "E14  VLIW issue-width sweep: the 4-to-8 plateau (paper §1.2.4)",
        ["issue width", "schedule cycles", "speedup vs width 1",
         "marginal gain"],
        notes=[
            f"workload: {workload} with an oracle list schedule",
            "marginal gain = speedup(width) / speedup(previous width)",
        ],
    )
    rows = registry.create("vliw").width_sweep(interp, widths)
    prev_speedup = None
    for width, cycles, speedup in rows:
        marginal = 1.0 if prev_speedup is None else speedup / prev_speedup
        table.add_row(width, cycles, speedup, marginal)
        prev_speedup = speedup
    return table


def run_latency_surprise(latencies=(1, 5, 10, 20, 50), workload="matmul",
                         n_pes=8, issue_width=8):
    program, _, args = compile_workload(workload)
    interp = Interpreter(program)
    interp.run(*args)
    schedule = registry.create(
        "vliw", issue_width=issue_width, assumed_latency=1
    ).compile(interp)
    table = Table(
        "E14b  Latency surprise: lockstep VLIW vs tagged-token overlap "
        "(paper §1.2.4)",
        ["actual latency", "VLIW time", "VLIW slowdown", "dataflow time",
         "dataflow slowdown"],
        notes=[
            "VLIW schedule assumed latency 1; every extra cycle stalls the "
            "whole machine",
            f"dataflow: {n_pes}-PE tagged-token machine, same latency sweep",
        ],
    )
    vliw_base = schedule.execution_time(latencies[0])
    df_base = None
    for latency in latencies:
        vliw_time = schedule.execution_time(latency)
        machine = TaggedTokenMachine(
            program, MachineConfig(n_pes=n_pes, network_latency=latency)
        )
        df_time = machine.run(*args).time
        if df_base is None:
            df_base = df_time
        table.add_row(latency, vliw_time, vliw_time / vliw_base, df_time,
                      df_time / df_base)
    return table


def test_e14_width_plateau(benchmark):
    table = benchmark.pedantic(run_width_sweep, rounds=1, iterations=1)
    speedups = [float(x) for x in table.column("speedup vs width 1")]
    widths = [int(x) for x in table.column("issue width")]
    by_width = dict(zip(widths, speedups))
    # Useful gains at small widths; a hard ceiling just beyond the paper's
    # "4 to 8" (the workload's average parallelism is ~6.5).
    assert by_width[4] > 2.0
    assert by_width[64] == by_width[16]  # flat: no gain past the ceiling
    assert by_width[64] < 8.0  # small-scale parallelism ceiling
    marginal = [float(x) for x in table.column("marginal gain")]
    assert marginal[-1] < 1.05  # the plateau


def test_e14b_latency_surprise(benchmark):
    table = benchmark.pedantic(
        run_latency_surprise, kwargs={"latencies": (1, 20)}, rounds=1,
        iterations=1,
    )
    vliw_slow = [float(x) for x in table.column("VLIW slowdown")]
    df_slow = [float(x) for x in table.column("dataflow slowdown")]
    assert vliw_slow[-1] > 2.0
    assert df_slow[-1] < vliw_slow[-1]


if __name__ == "__main__":
    from harness import write_table

    write_table(run_width_sweep(), "e14_vliw_width")
    write_table(run_latency_surprise(), "e14b_vliw_latency_surprise")
