"""E20 — Fault tolerance: degradation under injected memory faults.

The paper's Issue 1 (§1.1) is a claim about *degradation*: a von Neumann
processor idles on every slow memory reference, while the tagged-token
machine "can issue many simultaneous memory requests, can tolerate long
latencies ..., and can deal with responses that arrive out of order"
(§2.3).  E1 tests that with a uniformly slower network; this experiment
tests the stochastic version — a deterministic fault plan
(:mod:`repro.faults`) makes memory banks *randomly* serve requests
``mem_slow_cycles`` late with probability ``mem_slow_rate``, and we
sweep the fault severity.

Columns: the multithreaded von Neumann machine (HEP barrel, one shared
memory bank) vs the TTDA running matmul through I-structure storage.
Both see byte-identical fault plans (same seed, same rates); only the
architecture differs.  Expected shape: both degrade monotonically, but
TTDA's split-phase reads overlap the injected latency almost entirely
while the barrel — 8 contexts deep, but synchronous at each reference —
tracks it nearly linearly.

The grid honors ``repro bench --faults PLAN``: the validated plan is
exported as ``$REPRO_FAULT_PLAN`` before bench modules are imported, and
this module reads it at grid-build time — ``seed``/``mem_slow_rate``
override the defaults and an optional ``levels`` list replaces the
default severity grid, so each fault level appears as its own sweep row.

Level 0 runs with ``faults=None`` (no injector constructed at all), so
the baseline row doubles as a drift gate against the un-faulted models.
"""

import json
import os

from repro.analysis import Table
from repro.exp import Experiment
from repro.machines import registry

#: Injected extra cycles per slow memory response (0 = faults disabled).
LEVELS = [0, 32, 64, 128, 256, 512]
#: Per-request probability of a slow response at a nonzero level.  High
#: on purpose: at small rates the jitter *de-synchronizes* the barrel's
#: convoy at its single bank and HEP briefly speeds up, which would
#: muddy the monotonicity this table is about.
RATE = 0.9
SEED = 11


def _plan_overrides():
    """(seed, rate, levels) with ``$REPRO_FAULT_PLAN`` applied."""
    raw = os.environ.get("REPRO_FAULT_PLAN")
    if not raw:
        return SEED, RATE, LEVELS
    payload = json.loads(raw)
    seed = int(payload.get("seed", SEED))
    rate = float(payload.get("mem_slow_rate", RATE))
    levels = payload.get("levels", LEVELS)
    levels = [int(level) for level in levels]
    return seed, rate, levels


def _faults(config):
    """The ``faults=`` argument for one grid point (None at level 0)."""
    if config["mem_slow_cycles"] == 0:
        return None
    return {
        "seed": config["seed"],
        "mem_slow_rate": config["mem_slow_rate"],
        "mem_slow_cycles": config["mem_slow_cycles"],
    }


def run_point(config):
    """Both machines under one fault severity; slowdown bases at assembly."""
    faults = _faults(config)
    hep = registry.create("hep", faults=faults)
    hep_time = hep.run(workload="compute_loop").metric("time")
    ttda = registry.create("ttda", faults=faults)
    ttda_time = ttda.run(workload="matmul").metric("time")
    return [config["mem_slow_cycles"], hep_time, ttda_time]


def _assemble(experiment, values):
    table = Table(
        "E20  Fault tolerance: degradation under injected slow-bank faults "
        "(paper §1.1 Issue 1, §2.3)",
        ["slow cycles", "HEP time", "HEP slowdown", "TTDA time",
         "TTDA slowdown", "HEP/TTDA degradation"],
        notes=[
            "slow banks serve requests late with rate "
            f"{experiment.grid[0]['mem_slow_rate']:g}; "
            "slowdowns are relative to the fault-free run of each machine",
            "level 0 runs with faults=None (no injector constructed)",
            "same seed + plan => byte-identical results at any --jobs",
        ],
    )
    hep_base = values[0][1]
    ttda_base = values[0][2]
    for level, hep_time, ttda_time in values:
        hep_slow = hep_time / hep_base
        ttda_slow = ttda_time / ttda_base
        table.add_row(level, hep_time, hep_slow, ttda_time, ttda_slow,
                      hep_slow / ttda_slow)
    return table


def build_sweep(levels=None, rate=None, seed=None):
    plan_seed, plan_rate, plan_levels = _plan_overrides()
    levels = plan_levels if levels is None else levels
    rate = plan_rate if rate is None else rate
    seed = plan_seed if seed is None else seed
    return Experiment(
        name="e20_fault_tolerance",
        run=run_point,
        grid=[{"mem_slow_cycles": int(level), "mem_slow_rate": rate,
               "seed": seed} for level in levels],
        assemble=_assemble,
    )


SWEEPS = {"e20_fault_tolerance": build_sweep()}


def run_experiment(levels=None, rate=None, seed=None):
    experiment = build_sweep(levels, rate, seed)
    return experiment.table(experiment.run_inline())


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

def test_e20_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=([0, 64, 256],),
                               rounds=1, iterations=1)
    hep_slow = [float(x) for x in table.column("HEP slowdown")]
    ttda_slow = [float(x) for x in table.column("TTDA slowdown")]
    # Both machines degrade monotonically with fault severity ...
    assert all(a < b for a, b in zip(hep_slow, hep_slow[1:]))
    assert all(a < b for a, b in zip(ttda_slow, ttda_slow[1:]))
    # ... but the split-phase machine degrades strictly more slowly.
    assert all(t < h for h, t in zip(hep_slow[1:], ttda_slow[1:]))
    assert ttda_slow[-1] < 1.2 < hep_slow[-1]


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e20_fault_tolerance")
