"""E10 — scalability of the tagged-token machine (§2.3, §3).

The payoff claim: with tagged tokens, associative matching and I-structure
storage, adding PEs speeds programs up without reprogramming — the
"thousand-fold parallelism grail" motivation of §3.  Matmul and wavefront
sweep the PE count; the mapping-policy ablation (hash vs by-context)
quantifies the locality/balance trade the mapping information of §2.2.2
controls.
"""

from repro.analysis import Table, speedup
from repro.dataflow import ByContextMapping, MachineConfig, TaggedTokenMachine
from repro.workloads import compile_workload

PE_COUNTS = [1, 2, 4, 8, 16]


def run_point(workload, args, n_pes, mapping="hash"):
    program, reference, _ = compile_workload(workload)
    config = MachineConfig(n_pes=n_pes)
    if mapping == "context":
        config.mapping_factory = lambda n: ByContextMapping(n)
    machine = TaggedTokenMachine(program, config)
    result = machine.run(*args)
    assert result.value == reference(*args)
    return result


def run_experiment(pe_counts=PE_COUNTS, matmul_n=5, wavefront_n=7):
    table = Table(
        "E10  Tagged-token machine scaling (paper §2.3, §3)",
        ["PEs", "workload", "time", "speedup", "mean ALU util",
         "network tokens"],
        notes=["same program, same arguments; only the PE count changes"],
    )
    for workload, args in (("matmul", (matmul_n,)),
                           ("wavefront", (wavefront_n,))):
        base = None
        for n_pes in pe_counts:
            result = run_point(workload, args, n_pes)
            if base is None:
                base = result.time
            table.add_row(
                n_pes, workload, result.time, speedup(base, result.time),
                result.mean_alu_utilization,
                result.counters.get("tokens_network", 0),
            )
    return table


def mapping_ablation(n_pes=8, matmul_n=5):
    table = Table(
        "E10b  Mapping policy ablation: hash vs by-context (paper §2.2.2)",
        ["policy", "time", "network tokens", "local tokens"],
        notes=["by-context trades load balance for locality"],
    )
    for policy in ("hash", "context"):
        result = run_point("matmul", (matmul_n,), n_pes, mapping=policy)
        table.add_row(policy, result.time,
                      result.counters.get("tokens_network", 0),
                      result.counters.get("tokens_local", 0))
    return table


def test_e10_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=([1, 4, 8],),
                               kwargs={"matmul_n": 4, "wavefront_n": 6},
                               rounds=1, iterations=1)
    matmul_rows = [r for r in table.rows if r[1] == "matmul"]
    speedups = [float(r[3]) for r in matmul_rows]
    assert speedups[0] == 1.0
    assert speedups[1] > 1.5  # 4 PEs
    assert speedups[2] > speedups[1]  # 8 PEs keeps helping
    wavefront_rows = [r for r in table.rows if r[1] == "wavefront"]
    assert float(wavefront_rows[-1][3]) > 1.3


def test_e10b_mapping(benchmark):
    table = benchmark.pedantic(mapping_ablation, kwargs={"matmul_n": 4},
                               rounds=1, iterations=1)
    hash_row, context_row = table.rows
    # By-context keeps more tokens local than pure hashing.
    hash_local_share = int(hash_row[3]) / (int(hash_row[2]) + int(hash_row[3]))
    ctx_local_share = int(context_row[3]) / (
        int(context_row[2]) + int(context_row[3])
    )
    assert ctx_local_share > hash_local_share


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e10_ttda_scaling")
    write_table(mapping_ablation(), "e10b_mapping_ablation")
