"""E10 — scalability of the tagged-token machine (§2.3, §3).

The payoff claim: with tagged tokens, associative matching and I-structure
storage, adding PEs speeds programs up without reprogramming — the
"thousand-fold parallelism grail" motivation of §3.  Matmul and wavefront
sweep the PE count; the mapping-policy ablation (hash vs by-context)
quantifies the locality/balance trade the mapping information of §2.2.2
controls.

Ported to the sweep engine: every (workload, PE count) point is one pure
run through the machine registry; the speedup column (relative to each
workload's smallest PE count) is computed at assembly time.
"""

from repro.analysis import Table, speedup
from repro.exp import Experiment
from repro.machines import registry

PE_COUNTS = [1, 2, 4, 8, 16]


def run_point(config):
    """One (workload, PE count, mapping) run on the tagged-token machine."""
    model = registry.create("ttda", n_pes=config["n_pes"],
                            mapping=config.get("mapping", "hash"))
    result = model.run(workload=config["workload"],
                       args=tuple(config["args"]))
    return [
        result.metric("time"),
        result.metric("mean_alu_utilization"),
        result.metric("tokens_network"),
        result.metric("tokens_local"),
    ]


def _scaling_grid(pe_counts, matmul_n, wavefront_n):
    return [{"workload": workload, "args": list(args), "n_pes": n_pes,
             "mapping": "hash"}
            for workload, args in (("matmul", (matmul_n,)),
                                   ("wavefront", (wavefront_n,)))
            for n_pes in pe_counts]


def _assemble_scaling(experiment, values):
    table = Table(
        "E10  Tagged-token machine scaling (paper §2.3, §3)",
        ["PEs", "workload", "time", "speedup", "mean ALU util",
         "network tokens"],
        notes=["same program, same arguments; only the PE count changes"],
    )
    base = None
    base_workload = None
    for config, (time, util, net_tokens, _) in zip(experiment.grid, values):
        if config["workload"] != base_workload:
            base_workload = config["workload"]
            base = time
        table.add_row(config["n_pes"], config["workload"], time,
                      speedup(base, time), util, net_tokens)
    return table


def build_sweep(pe_counts=PE_COUNTS, matmul_n=5, wavefront_n=7):
    return Experiment(
        name="e10_ttda_scaling",
        run=run_point,
        grid=_scaling_grid(pe_counts, matmul_n, wavefront_n),
        assemble=_assemble_scaling,
    )


def _assemble_ablation(experiment, values):
    table = Table(
        "E10b  Mapping policy ablation: hash vs by-context (paper §2.2.2)",
        ["policy", "time", "network tokens", "local tokens"],
        notes=["by-context trades load balance for locality"],
    )
    for config, (time, _, net_tokens, local_tokens) in zip(experiment.grid,
                                                           values):
        table.add_row(config["mapping"], time, net_tokens, local_tokens)
    return table


def build_ablation(n_pes=8, matmul_n=5):
    return Experiment(
        name="e10b_mapping_ablation",
        run=run_point,
        grid=[{"workload": "matmul", "args": [matmul_n], "n_pes": n_pes,
               "mapping": policy} for policy in ("hash", "context")],
        assemble=_assemble_ablation,
    )


SWEEPS = {
    "e10_ttda_scaling": build_sweep(),
    "e10b_mapping_ablation": build_ablation(),
}


def run_experiment(pe_counts=PE_COUNTS, matmul_n=5, wavefront_n=7):
    experiment = build_sweep(pe_counts, matmul_n, wavefront_n)
    return experiment.table(experiment.run_inline())


def mapping_ablation(n_pes=8, matmul_n=5):
    experiment = build_ablation(n_pes, matmul_n)
    return experiment.table(experiment.run_inline())


def test_e10_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=([1, 4, 8],),
                               kwargs={"matmul_n": 4, "wavefront_n": 6},
                               rounds=1, iterations=1)
    matmul_rows = [r for r in table.rows if r[1] == "matmul"]
    speedups = [float(r[3]) for r in matmul_rows]
    assert speedups[0] == 1.0
    assert speedups[1] > 1.5  # 4 PEs
    assert speedups[2] > speedups[1]  # 8 PEs keeps helping
    wavefront_rows = [r for r in table.rows if r[1] == "wavefront"]
    assert float(wavefront_rows[-1][3]) > 1.3


def test_e10b_mapping(benchmark):
    table = benchmark.pedantic(mapping_ablation, kwargs={"matmul_n": 4},
                               rounds=1, iterations=1)
    hash_row, context_row = table.rows
    # By-context keeps more tokens local than pure hashing.
    hash_local_share = int(hash_row[3]) / (int(hash_row[2]) + int(hash_row[3]))
    ctx_local_share = int(context_row[3]) / (
        int(context_row[2]) + int(context_row[3])
    )
    assert ctx_local_share > hash_local_share


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e10_ttda_scaling")
    write_table(mapping_ablation(), "e10b_mapping_ablation")
