"""E21 — the analytic surrogate validated against simulation.

The paper's quantitative core is that latency (Issue 1) and
synchronization waits (Issue 2) determine multiprocessor performance;
``repro.predict`` turns the profiler's measurement of exactly those
quantities (the cycle-accounting buckets of PR 3) into an
Amdahl/queueing model that answers config queries without simulating.
This experiment is the model-vs-measurement table: for every machine
with a committed fit artifact under ``benchmarks/fits/``, re-simulate
the fitted e01/e07/e10-derived grids, answer each point from the
committed fit, and report the relative-error distribution.

The committed baseline makes the error bounds part of the drift gate:
``repro bench --check`` fails if a code change silently degrades the
surrogate (or the fit artifacts drift from what simulation produces).
The fit artifacts themselves are hashed into the cache key, so a refit
invalidates cached rows.
"""

import glob
import os

from repro.analysis import Table
from repro.exp import Experiment
from repro.predict import (MEDIAN_REL_BOUND, P95_REL_BOUND, default_fits_dir,
                           fitted_machines, validate_machine)

_FITS = sorted(glob.glob(os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fits", "*.json")))


def run_point(config):
    """Validate one machine's committed fit against fresh simulation."""
    report = validate_machine(config["machine"], default_fits_dir())
    overall = report["overall"]
    return [
        report["machine"],
        len(report["workloads"]),
        overall["points"],
        overall["median_rel"],
        overall["p95_rel"],
        overall["max_rel"],
        "yes" if report["ok"] else "no",
    ]


def _assemble(experiment, values):
    table = Table(
        "E21  Analytic surrogate vs simulation: Amdahl/queueing fit "
        "error over the e01/e07/e10 grids",
        ["machine", "workloads", "points", "median rel err", "p95 rel err",
         "max rel err", "within bounds"],
        notes=[
            "fit: NNLS per accounting bucket over the Amdahl basis "
            "[1, W, W/N, L, LW/N, W(N-1)/N, LW(N-1)/N, W*max(0,L-N)/N]",
            f"bounds: median <= {MEDIAN_REL_BOUND:.0%}, "
            f"p95 <= {P95_REL_BOUND:.0%} (repro predict --validate)",
        ],
    )
    for row in values:
        table.add_row(*row)
    return table


def build_sweep(machines=None):
    return Experiment(
        name="e21_predict",
        run=run_point,
        grid=[{"machine": machine}
              for machine in (machines or fitted_machines())],
        assemble=_assemble,
        code_paths=[os.path.abspath(__file__)] + _FITS,
    )


SWEEPS = {"e21_predict": build_sweep()}


def run_experiment(machines=None):
    experiment = build_sweep(machines)
    return experiment.table(experiment.run_inline())


def test_e21_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=(["cmmp"],),
                               rounds=1, iterations=1)
    assert [row[0] for row in table.rows] == ["cmmp"]
    assert all(row[-1] == "yes" for row in table.rows)


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e21_predict")
