"""E4 — Cm*: locality determines the utilization ceiling (§1.2.2).

"Greater interprocessor distances translated into longer memory reference
times and decreased processor utilization ... the effect of processor idle
time put an upper limit on the number of processors that could cooperate
on even highly parallel programs."

Sweep the remote-reference fraction for intra-cluster and inter-cluster
victims and compare against the closed-form prediction.

Ported to the sweep engine: each fraction is one pure run that measures
both victim distances on a freshly built Cm* via the machine registry.
"""

from repro.analysis import Table
from repro.exp import Experiment
from repro.machines import registry

FRACTIONS = [0.0, 0.05, 0.1, 0.2, 0.35, 0.5]


def run_point(config):
    """Intra- and inter-cluster utilization at one remote fraction."""
    model = registry.create("cmstar", n_clusters=config["n_clusters"],
                            cluster_size=config["cluster_size"])
    intra = model.run(remote_fraction=config["fraction"],
                      remote_kind="intracluster")
    inter = model.run(remote_fraction=config["fraction"],
                      remote_kind="intercluster")
    return [
        config["fraction"],
        intra.metric("utilization"),
        inter.metric("utilization"),
        inter.metric("predicted_utilization"),
    ]


def _assemble(experiment, values):
    first = experiment.grid[0]
    table = Table(
        "E4  Cm* processor utilization vs remote-reference fraction "
        "(paper §1.2.2)",
        ["remote fraction", "util (intra-cluster)", "util (inter-cluster)",
         "model (inter)"],
        notes=[
            f"{first['n_clusters']} clusters x {first['cluster_size']} "
            "processors; every processor idles during its remote references",
        ],
    )
    for row in values:
        table.add_row(*row)
    return table


def build_sweep(fractions=FRACTIONS, n_clusters=4, cluster_size=4):
    return Experiment(
        name="e04_cmstar_locality",
        run=run_point,
        grid=[{"fraction": fraction, "n_clusters": n_clusters,
               "cluster_size": cluster_size} for fraction in fractions],
        assemble=_assemble,
    )


SWEEPS = {"e04_cmstar_locality": build_sweep()}


def run_experiment(fractions=FRACTIONS, n_clusters=4, cluster_size=4):
    experiment = build_sweep(fractions, n_clusters=n_clusters,
                             cluster_size=cluster_size)
    return experiment.table(experiment.run_inline())


def test_e04_shape(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=([0.0, 0.1, 0.35],),
        kwargs={"n_clusters": 2, "cluster_size": 2}, rounds=1, iterations=1,
    )
    intra = [float(x) for x in table.column("util (intra-cluster)")]
    inter = [float(x) for x in table.column("util (inter-cluster)")]
    # Utilization falls monotonically with the remote fraction...
    assert intra[0] > intra[-1]
    assert inter[0] > inter[-1]
    # ...and distance makes it worse: inter-cluster always below intra.
    assert all(i <= a + 1e-9 for a, i in zip(intra[1:], inter[1:]))
    # Even a 35% inter-cluster mix cripples the processor.
    assert inter[-1] < 0.45


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e04_cmstar_locality")
