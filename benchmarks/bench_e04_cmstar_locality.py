"""E4 — Cm*: locality determines the utilization ceiling (§1.2.2).

"Greater interprocessor distances translated into longer memory reference
times and decreased processor utilization ... the effect of processor idle
time put an upper limit on the number of processors that could cooperate
on even highly parallel programs."

Sweep the remote-reference fraction for intra-cluster and inter-cluster
victims and compare against the closed-form prediction.
"""

from repro.analysis import Table
from repro.machines import locality_sweep

FRACTIONS = [0.0, 0.05, 0.1, 0.2, 0.35, 0.5]


def run_experiment(fractions=FRACTIONS, n_clusters=4, cluster_size=4):
    table = Table(
        "E4  Cm* processor utilization vs remote-reference fraction "
        "(paper §1.2.2)",
        ["remote fraction", "util (intra-cluster)", "util (inter-cluster)",
         "model (inter)"],
        notes=[
            f"{n_clusters} clusters x {cluster_size} processors; every "
            "processor idles during its remote references",
        ],
    )
    intra = locality_sweep(fractions, n_clusters=n_clusters,
                           cluster_size=cluster_size,
                           remote_kind="intracluster")
    inter = locality_sweep(fractions, n_clusters=n_clusters,
                           cluster_size=cluster_size,
                           remote_kind="intercluster")
    for (f, u_intra, _), (_, u_inter, model) in zip(intra, inter):
        table.add_row(f, u_intra, u_inter, model)
    return table


def test_e04_shape(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=([0.0, 0.1, 0.35],),
        kwargs={"n_clusters": 2, "cluster_size": 2}, rounds=1, iterations=1,
    )
    intra = [float(x) for x in table.column("util (intra-cluster)")]
    inter = [float(x) for x in table.column("util (inter-cluster)")]
    # Utilization falls monotonically with the remote fraction...
    assert intra[0] > intra[-1]
    assert inter[0] > inter[-1]
    # ...and distance makes it worse: inter-cluster always below intra.
    assert all(i <= a + 1e-9 for a, i in zip(intra[1:], inter[1:]))
    # Even a 35% inter-cluster mix cripples the processor.
    assert inter[-1] < 0.45


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e04_cmstar_locality")
