"""Regenerate every experiment table under benchmarks/results/.

Run:  python benchmarks/run_all.py [--only SUBSTRING]

Each table is written as .txt + .json, and an aggregate telemetry file
``BENCH_results.json`` (experiment name, table shape, wall-clock seconds)
lands at the repository root.
"""

import argparse
import importlib
import json
import os
import sys
import time

from harness import table_rows, write_table

AGGREGATE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_results.json",
)

EXPERIMENTS = [
    ("bench_e01_latency_tolerance", [("run_experiment", "e01_latency_tolerance")]),
    ("bench_e02_sync_granularity", [("run_experiment", "e02_sync_granularity")]),
    ("bench_e03_cache_coherence",
     [("run_experiment", "e03_cache_coherence"),
      ("write_policy_table", "e03b_write_policy")]),
    ("bench_e04_cmstar_locality", [("run_experiment", "e04_cmstar_locality")]),
    ("bench_e05_fetch_and_add", [("run_experiment", "e05_fetch_and_add")]),
    ("bench_e06_busywait_vs_istructure",
     [("run_experiment", "e06_busywait_vs_istructure")]),
    ("bench_e07_trapezoid", [("run_experiment", "e07_trapezoid")]),
    ("bench_e08_connection_machine",
     [("run_experiment", "e08_connection_machine"),
      ("illiac_table", "e08b_illiac_iv")]),
    ("bench_e09_context_depth", [("run_experiment", "e09_context_depth")]),
    ("bench_e10_ttda_scaling",
     [("run_experiment", "e10_ttda_scaling"),
      ("mapping_ablation", "e10b_mapping_ablation")]),
    ("bench_e11_istructure_cost", [("run_experiment", "e11_istructure_cost")]),
    ("bench_e12_matching_store",
     [("run_experiment", "e12_matching_store"),
      ("pe_sweep", "e12b_matching_store_pes")]),
    ("bench_e13_cmmp_crossbar",
     [("run_experiment", "e13_cmmp_crossbar"),
      ("semaphore_table", "e13b_semaphore_cost")]),
    ("bench_e14_vliw",
     [("run_width_sweep", "e14_vliw_width"),
      ("run_latency_surprise", "e14b_vliw_latency_surprise")]),
    ("bench_e15_emulation_facility",
     [("run_experiment", "e15_emulation_facility")]),
    ("bench_e16_dataflow_overhead",
     [("run_experiment", "e16_dataflow_overhead")]),
    ("bench_e17_wm_capacity", [("run_experiment", "e17_wm_capacity")]),
    ("bench_e18_cmstar_microtasking",
     [("run_experiment", "e18_cmstar_microtasking")]),
    ("bench_e19_crossover", [("run_experiment", "e19_crossover")]),
]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--only", default=None, metavar="SUBSTRING",
                        help="run only experiments whose module or table "
                             "name contains SUBSTRING")
    options = parser.parse_args(argv)

    telemetry = []
    for module_name, runners in EXPERIMENTS:
        selected = [
            (fn_name, out_name) for fn_name, out_name in runners
            if options.only is None
            or options.only in module_name or options.only in out_name
        ]
        if not selected:
            continue
        module = importlib.import_module(module_name)
        for fn_name, out_name in selected:
            start = time.time()
            table = getattr(module, fn_name)()
            wall = time.time() - start
            write_table(table, out_name, meta={"wall_seconds": round(wall, 3)})
            print(f"[{wall:6.1f}s] {out_name}\n", file=sys.stderr)
            telemetry.append({
                "experiment": out_name,
                "module": module_name,
                "title": table.title,
                "rows": len(table.rows),
                "columns": list(table.columns),
                "wall_seconds": round(wall, 3),
                "data": table_rows(table),
            })

    with open(AGGREGATE_PATH, "w", encoding="utf-8") as fh:
        json.dump({"experiments": telemetry}, fh, indent=2, sort_keys=True,
                  default=repr)
        fh.write("\n")
    total = sum(entry["wall_seconds"] for entry in telemetry)
    print(f"[{total:6.1f}s] total -> {AGGREGATE_PATH}", file=sys.stderr)


if __name__ == "__main__":
    main()
