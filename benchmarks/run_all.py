"""Regenerate every experiment table under benchmarks/results/.

Run:  python benchmarks/run_all.py
"""

import importlib
import sys
import time

from harness import write_table

EXPERIMENTS = [
    ("bench_e01_latency_tolerance", [("run_experiment", "e01_latency_tolerance")]),
    ("bench_e02_sync_granularity", [("run_experiment", "e02_sync_granularity")]),
    ("bench_e03_cache_coherence",
     [("run_experiment", "e03_cache_coherence"),
      ("write_policy_table", "e03b_write_policy")]),
    ("bench_e04_cmstar_locality", [("run_experiment", "e04_cmstar_locality")]),
    ("bench_e05_fetch_and_add", [("run_experiment", "e05_fetch_and_add")]),
    ("bench_e06_busywait_vs_istructure",
     [("run_experiment", "e06_busywait_vs_istructure")]),
    ("bench_e07_trapezoid", [("run_experiment", "e07_trapezoid")]),
    ("bench_e08_connection_machine",
     [("run_experiment", "e08_connection_machine"),
      ("illiac_table", "e08b_illiac_iv")]),
    ("bench_e09_context_depth", [("run_experiment", "e09_context_depth")]),
    ("bench_e10_ttda_scaling",
     [("run_experiment", "e10_ttda_scaling"),
      ("mapping_ablation", "e10b_mapping_ablation")]),
    ("bench_e11_istructure_cost", [("run_experiment", "e11_istructure_cost")]),
    ("bench_e12_matching_store",
     [("run_experiment", "e12_matching_store"),
      ("pe_sweep", "e12b_matching_store_pes")]),
    ("bench_e13_cmmp_crossbar",
     [("run_experiment", "e13_cmmp_crossbar"),
      ("semaphore_table", "e13b_semaphore_cost")]),
    ("bench_e14_vliw",
     [("run_width_sweep", "e14_vliw_width"),
      ("run_latency_surprise", "e14b_vliw_latency_surprise")]),
    ("bench_e15_emulation_facility",
     [("run_experiment", "e15_emulation_facility")]),
    ("bench_e16_dataflow_overhead",
     [("run_experiment", "e16_dataflow_overhead")]),
    ("bench_e17_wm_capacity", [("run_experiment", "e17_wm_capacity")]),
    ("bench_e18_cmstar_microtasking",
     [("run_experiment", "e18_cmstar_microtasking")]),
    ("bench_e19_crossover", [("run_experiment", "e19_crossover")]),
]


def main():
    for module_name, runners in EXPERIMENTS:
        module = importlib.import_module(module_name)
        for fn_name, out_name in runners:
            start = time.time()
            table = getattr(module, fn_name)()
            write_table(table, out_name)
            print(f"[{time.time() - start:6.1f}s] {out_name}\n",
                  file=sys.stderr)


if __name__ == "__main__":
    main()
