"""Regenerate every experiment table under benchmarks/results/.

Run:  python benchmarks/run_all.py [--only SUBSTRING] [--jobs N]
                                   [--no-cache] [--timeout SECONDS]

Execution is farmed out by the sweep engine in :mod:`repro.exp`:
modules that declare ``SWEEPS`` run grid-parallel (one worker per
parameter point), the rest run one table per worker, and every finished
run is cached on disk (``benchmarks/.expcache``) keyed by a content hash
of (config, code version) — so a second invocation is served almost
entirely from cache and editing a module invalidates exactly its runs.

Each table is written as .txt + .json, and an aggregate telemetry file
``BENCH_results.json`` (experiment name, table shape, wall-clock seconds)
lands at the repository root.  ``repro bench`` is the same thing as a
CLI subcommand.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.exp.bench import run_suite

#: (module, [(table_function, output_name)]) — the full suite.
EXPERIMENTS = [
    ("bench_e01_latency_tolerance", [("run_experiment", "e01_latency_tolerance")]),
    ("bench_e02_sync_granularity", [("run_experiment", "e02_sync_granularity")]),
    ("bench_e03_cache_coherence",
     [("run_experiment", "e03_cache_coherence"),
      ("write_policy_table", "e03b_write_policy")]),
    ("bench_e04_cmstar_locality", [("run_experiment", "e04_cmstar_locality")]),
    ("bench_e05_fetch_and_add", [("run_experiment", "e05_fetch_and_add")]),
    ("bench_e06_busywait_vs_istructure",
     [("run_experiment", "e06_busywait_vs_istructure")]),
    ("bench_e07_trapezoid", [("run_experiment", "e07_trapezoid")]),
    ("bench_e08_connection_machine",
     [("run_experiment", "e08_connection_machine"),
      ("illiac_table", "e08b_illiac_iv")]),
    ("bench_e09_context_depth", [("run_experiment", "e09_context_depth")]),
    ("bench_e10_ttda_scaling",
     [("run_experiment", "e10_ttda_scaling"),
      ("mapping_ablation", "e10b_mapping_ablation")]),
    ("bench_e11_istructure_cost", [("run_experiment", "e11_istructure_cost")]),
    ("bench_e12_matching_store",
     [("run_experiment", "e12_matching_store"),
      ("pe_sweep", "e12b_matching_store_pes")]),
    ("bench_e13_cmmp_crossbar",
     [("run_experiment", "e13_cmmp_crossbar"),
      ("semaphore_table", "e13b_semaphore_cost")]),
    ("bench_e14_vliw",
     [("run_width_sweep", "e14_vliw_width"),
      ("run_latency_surprise", "e14b_vliw_latency_surprise")]),
    ("bench_e15_emulation_facility",
     [("run_experiment", "e15_emulation_facility")]),
    ("bench_e16_dataflow_overhead",
     [("run_experiment", "e16_dataflow_overhead")]),
    ("bench_e17_wm_capacity", [("run_experiment", "e17_wm_capacity")]),
    ("bench_e18_cmstar_microtasking",
     [("run_experiment", "e18_cmstar_microtasking")]),
    ("bench_e19_crossover", [("run_experiment", "e19_crossover")]),
    ("bench_e20_fault_tolerance",
     [("run_experiment", "e20_fault_tolerance")]),
    ("bench_e21_predict", [("run_experiment", "e21_predict")]),
]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--only", default=None, metavar="SUBSTRING",
                        help="run only experiments whose module or table "
                             "name contains SUBSTRING")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: cpu count; "
                             "0 = inline, no workers)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the result cache")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-run timeout before terminate + one retry")
    options = parser.parse_args(argv)

    aggregate = run_suite(
        only=options.only,
        jobs=options.jobs,
        no_cache=options.no_cache,
        timeout=options.timeout,
        bench_dir=os.path.dirname(os.path.abspath(__file__)),
    )
    return 1 if aggregate["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
