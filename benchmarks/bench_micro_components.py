"""Component microbenchmarks (genuine pytest-benchmark timing runs).

Unlike the experiment benches (single-shot shape assertions), these
measure the *simulator's own* throughput — event kernel, I-structure
store, matching, interpreter, full machine — so performance regressions
in the library show up in the benchmark history.
"""

from repro.common import Simulator
from repro.dataflow import Interpreter, MachineConfig, TaggedTokenMachine
from repro.istructure import IStructureModule
from repro.machines import registry
from repro.workloads import compile_workload
from repro.workloads.handbuilt import build_sum_loop


def test_event_kernel_throughput(benchmark):
    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5000:
                sim.schedule(1, tick)

        sim.schedule(0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 5000


def test_istructure_store_throughput(benchmark):
    def run():
        module = IStructureModule()
        for i in range(2000):
            module.read(("a", i), reply=i)
        for i in range(2000):
            module.write(("a", i), i)
        return module.pending_reads()

    assert benchmark(run) == 0


def test_interpreter_throughput_sum_loop(benchmark):
    program = build_sum_loop()

    def run():
        return Interpreter(program).run(100)

    assert benchmark(run) == 5050


def test_interpreter_throughput_matmul(benchmark):
    program, reference, _ = compile_workload("matmul")

    def run():
        return Interpreter(program).run(5)

    assert benchmark(run) == reference(5)


def test_machine_throughput_small(benchmark):
    program, reference, _ = compile_workload("pipeline")

    def run():
        machine = TaggedTokenMachine(program, MachineConfig(n_pes=4))
        return machine.run(12).value

    assert benchmark(run) == reference(12)


def test_omega_hotspot_throughput(benchmark):
    model = registry.create("ultracomputer", stages=5, combining=True)

    def run():
        return model.hotspot().final_value

    assert benchmark(run) == 32
