"""Event-kernel microbenchmark: calendar-queue vs. legacy heapq kernel.

Measures raw schedule/fire/cancel throughput (events per second) of
``repro.common.simulator`` on synthetic workloads shaped like the hot
paths of the real machine models:

* ``post_chain_int``     — self-perpetuating integer-delay ``post()``
  chains: the bucket fast path (PE pipeline stages, network hops);
* ``post_fanout_burst``  — every firing posts several events at small
  integer delays: token fanout under the calendar queue;
* ``post_fractional``    — fractional delays, so sub-cycle instants are
  measured, not assumed (the calendar keys buckets by the exact float
  instant, so these share the fast path);
* ``schedule_cancel``    — ``schedule()`` + ``cancel()`` churn with a
  live chain running alongside: lazy cancellation and compaction.

Run directly to benchmark both kernels and write ``BENCH_perf.json`` at
the repo root; ``--legacy`` restricts the run to the legacy kernel (the
same comparison the ``REPRO_SIM_KERNEL=legacy`` switch gives whole
programs).  ``--experiments`` additionally times the wall-clock gated
experiments (e10 scaling sweep, e19 crossover) in subprocesses.

The ``batch`` section measures ``exec_mode="batch"`` (the SoA batch
drain) against the reference event path on two batch-heavy scenarios —
a 256-PE waiting-matching pool and a 2048-bank full/empty memory system
— plus an e10-style TTDA matmul timed under both modes.  The gate is
recorded as ``{target, achieved, met}``; because batch mode replays
every handler byte-identically, the un-vectorizable per-event machinery
bounds it near parity on real components, and an unmet gate with the
honest number is the expected outcome (see docs/PERFORMANCE.md).

The ``psim`` section measures the sharded parallel kernel
(:mod:`repro.common.psim`): cross-shard ring throughput per mode, and an
e10-style TTDA matmul timed serial vs. ``shards=4``.  The recorded
``host_cpus`` qualifies the speedup — on a single-CPU host (or any
CPython with the GIL and ``mode=thread``) the conservative kernel pays
its synchronization overhead without the parallel hardware to buy it
back, so speedups below 1.0 are the *honest* expected result there.

Usage::

    python benchmarks/bench_micro_kernel.py                # both kernels
    python benchmarks/bench_micro_kernel.py --legacy       # legacy only
    python benchmarks/bench_micro_kernel.py --experiments  # + e10/e19
    python benchmarks/bench_micro_kernel.py --skip-psim    # old sections only
"""

import argparse
import json
import math
import os
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.common.psim import ShardedSimulator  # noqa: E402
from repro.common.simulator import CalendarSimulator, LegacySimulator  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_perf.json")

#: Wall-clock gated experiments (ISSUE: >=1.5x vs. the legacy kernel).
GATED_EXPERIMENTS = ("e10_ttda_scaling", "e19_crossover")


# ----------------------------------------------------------------------
# Scenarios.  Each takes (sim_class, n_events) and returns events fired.
# The workloads terminate naturally (countdown closures) so both kernels
# run the identical event population to quiescence.
# ----------------------------------------------------------------------

def post_chain_int(sim_class, n_events, chains=64):
    """Parallel integer-delay post() chains (the bucket fast path)."""
    sim = sim_class()
    budget = [n_events]

    def tick():
        budget[0] -= 1
        if budget[0] > 0:
            sim.post(1, tick)

    for _ in range(min(chains, n_events)):
        sim.post(1, tick)
    sim.run()
    return sim.events_fired


def post_fanout_burst(sim_class, n_events, fanout=4, chains=32):
    """Every firing posts ``fanout`` events at mixed integer delays —
    token fanout on a loaded machine (``chains`` concurrent producers,
    the way every PE pipeline keeps its own events in flight)."""
    sim = sim_class()
    budget = [n_events]
    delays = (1, 1, 2, 3)

    def fire():
        budget[0] -= 1
        if budget[0] <= 0:
            return
        burst = min(fanout, budget[0])
        outstanding = [burst]
        for i in range(burst):
            sim.post(delays[i % len(delays)], sink, outstanding)

    def sink(outstanding):
        budget[0] -= 1
        outstanding[0] -= 1
        if outstanding[0] == 0 and budget[0] > 0:
            sim.post(1, fire)

    for _ in range(min(chains, n_events)):
        sim.post(1, fire)
    sim.run()
    return sim.events_fired


def post_fractional(sim_class, n_events, chains=512):
    """Fractional delays under load: sub-cycle instants at the queue
    depths a large machine sustains."""
    sim = sim_class()
    budget = [n_events]

    def tick():
        budget[0] -= 1
        if budget[0] > 0:
            sim.post(0.5, tick)

    for _ in range(min(chains, n_events)):
        sim.post(0.25, tick)
    sim.run()
    return sim.events_fired


def schedule_cancel(sim_class, n_events, chains=64):
    """schedule() + cancel() churn: every firing schedules a far-future
    decoy timer and cancels the previous one, across many concurrent
    chains (lazy-cancel, debris compaction, bounded queues)."""
    sim = sim_class()
    budget = [n_events]

    def tick(decoy):
        budget[0] -= 1
        if decoy[0] is not None:
            decoy[0].cancel()
        if budget[0] > 0:
            decoy[0] = sim.schedule(10_000_000, noop)
            sim.post(1, tick, decoy)

    def noop():
        pass

    for _ in range(min(chains, n_events)):
        sim.post(1, tick, [None])
    sim.run()
    return sim.events_fired


SCENARIOS = [
    ("post_chain_int", post_chain_int),
    ("post_fanout_burst", post_fanout_burst),
    ("post_fractional", post_fractional),
    ("schedule_cancel", schedule_cancel),
]


# ----------------------------------------------------------------------
# Parallel-kernel (psim) scenarios.
# ----------------------------------------------------------------------

def psim_ring(n_events, shards=4, mode=None, owners_per_shard=8,
              lookahead=1.0):
    """Cross-shard token ring: ``shards * owners_per_shard`` owners laid
    round-robin over the shards, each running an independent chain that
    hops to the next owner — so nearly every post crosses a shard
    boundary at exactly the channel lookahead (the conservative kernel's
    worst case: maximal synchronization per unit of work)."""
    if mode is None:
        sim = CalendarSimulator()       # serial baseline, same code path
        shards = 1
    else:
        sim = ShardedSimulator(shards=shards, mode=mode)
    n = shards * owners_per_shard
    owners = [object() for _ in range(n)]
    if mode is not None:
        links = {}
        for s in range(shards):
            links[(s, (s + 1) % shards)] = lookahead
            links[((s + 1) % shards, s)] = lookahead
        if shards == 1:
            links = {}
        sim.configure_shards(
            [(owner, i % shards) for i, owner in enumerate(owners)], links
        )

    def hop(i, budget):
        budget[0] -= 1
        if budget[0] > 0:
            j = (i + 1) % n
            sim.post_to(owners[j], lookahead, hop, j, budget)

    per_chain = max(1, n_events // n)
    for i in range(n):
        sim.post_to(owners[i], 0, hop, i, [per_chain])
    sim.run()
    return sim


PSIM_MODES = (None, "sequenced", "window", "thread")

#: The e10-style workload for the serial-vs-parallel machine timing:
#: the same matmul the e10 scaling sweep runs, at its largest PE count.
PSIM_E10_CONFIG = {"n_pes": 16}
PSIM_E10_WORKLOAD = {"workload": "matmul", "args": [6]}
PSIM_E10_SHARDS = 4


def run_psim_bench(n_events, repeat):
    """Ring throughput per mode + e10-style TTDA serial/parallel timing."""
    from repro.machines import registry

    ring = {}
    kernel_stats = {}
    for mode in PSIM_MODES:
        label = mode or "serial"
        best = 0.0
        fired = 0
        for _ in range(repeat):
            t0 = time.perf_counter()
            sim = psim_ring(n_events, mode=mode)
            elapsed = time.perf_counter() - t0
            fired = sim.events_fired
            best = max(best, fired / elapsed if elapsed > 0 else 0.0)
        ring[f"{label}_events_per_sec"] = round(best)
        ring["events_fired"] = fired
        # Conservative-parallel honesty counters (null messages, rounds,
        # per-shard balance) for the last repetition of each mode.
        kernel_stats[label] = sim.kernel_stats()

    spec = {"machine": "ttda", "config": dict(PSIM_E10_CONFIG),
            "workload": dict(PSIM_E10_WORKLOAD)}
    timings = {}
    for label, shards, mode in (("serial", None, None),
                                ("sequenced", PSIM_E10_SHARDS, None),
                                ("thread", PSIM_E10_SHARDS, "thread")):
        if mode is None:
            os.environ.pop("REPRO_PSIM_MODE", None)
        else:
            os.environ["REPRO_PSIM_MODE"] = mode
        run_spec = dict(spec)
        if shards:
            run_spec["config"] = dict(spec["config"], shards=shards)
        best = None
        for _ in range(repeat):
            t0 = time.perf_counter()
            registry.run_spec(run_spec)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        timings[f"{label}_wall_seconds"] = round(best, 3)
    os.environ.pop("REPRO_PSIM_MODE", None)

    serial = timings["serial_wall_seconds"]
    return {
        "host_cpus": os.cpu_count(),
        "kernel_stats": kernel_stats,
        "ring": dict(ring, shards=PSIM_E10_SHARDS),
        "e10_ttda_matmul": dict(
            timings,
            config=dict(PSIM_E10_CONFIG),
            workload=dict(PSIM_E10_WORKLOAD),
            shards=PSIM_E10_SHARDS,
            sequenced_speedup=round(
                serial / timings["sequenced_wall_seconds"], 2
            ) if timings["sequenced_wall_seconds"] else 0.0,
            thread_speedup=round(
                serial / timings["thread_wall_seconds"], 2
            ) if timings["thread_wall_seconds"] else 0.0,
        ),
    }


# ----------------------------------------------------------------------
# Batch execution mode (exec_mode="batch") scenarios.
# ----------------------------------------------------------------------

#: The gate the ISSUE sets for the batch-heavy scenarios.  Recorded as
#: ``{target, achieved, met}`` — honestly, like the psim section: the
#: batch drain replays every entry's exact handler body to stay
#: byte-identical, so the un-vectorizable per-event machinery (FIFO
#: server restarts, queue bookkeeping, downstream submits) bounds the
#: achievable speedup on real components regardless of batch width.
BATCH_GATE_TARGET = 2.5

#: The e10-style workload timed event-vs-batch (recorded, not gated).
BATCH_E10_CONFIG = {"n_pes": 64}
BATCH_E10_WORKLOAD = {"workload": "matmul", "args": [8]}


def batch_token_match(exec_mode, n_pes=256, pairs=8192):
    """Wide waiting-matching pool: ``pairs`` dyadic ADD token pairs
    injected at t=0 into a ``n_pes``-PE tagged-token machine, then run
    to quiescence.  Every instant drains one completion per PE — runs
    up to ``n_pes`` wide through the waiting-matching, fetch, ALU and
    output sections (the §1.2 shape: a large pool of homogeneous ready
    work)."""
    from repro.dataflow.machine import MachineConfig, TaggedTokenMachine
    from repro.dataflow.tags import intern_tag, reset_intern_table
    from repro.dataflow.token import Token, TokenKind
    from repro.graph import Opcode, ProgramBuilder

    pb = ProgramBuilder()
    b = pb.procedure("pairs")
    add = b.emit(Opcode.ADD, name="a+b")
    ret = b.emit(Opcode.RETURN)
    b.wire(add, ret, 0)
    b.param((add, 0))
    b.param((add, 1))
    program = pb.build(validate=False)

    machine = TaggedTokenMachine(
        program, MachineConfig(n_pes=n_pes, exec_mode=exec_mode))
    reset_intern_table()
    sim = machine.sim
    for i in range(pairs):
        tag = intern_tag(None, "pairs", add, i + 1)
        pe = machine.mapping.pe_of(tag)
        target = machine.pes[pe]
        for port in (0, 1):
            token = Token(tag, port, i, TokenKind.NORMAL, nt=2)
            sim.post_to(target, 0, target.receive, token.routed_to(pe))
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    matches = sum(pe.counters["matches"] for pe in machine.pes)
    assert matches == pairs, f"expected {pairs} matches, got {matches}"
    return sim.events_fired, elapsed, sim.kernel_stats()


def batch_bank_service(exec_mode, banks=2048, rounds=40):
    """Wide memory-bank pool: ``banks`` full/empty-bit memory modules,
    each cycling LOAD / WRITEF / READF / FAA request chains — every
    instant completes one request per bank, so the batch kernel sees
    ``banks``-wide runs through the vectorized full/empty gather."""
    from repro.common.batch import BatchPlane
    from repro.common.simulator import Simulator
    from repro.vonneumann.isa import Op
    from repro.vonneumann.memory import (
        BankServeKind, FullBitPlane, MemRequest, MemoryModule,
    )

    sim = Simulator()
    modules = [MemoryModule(sim, 1.0, name=f"m{i}") for i in range(banks)]
    if exec_mode == "batch" and isinstance(sim, CalendarSimulator):
        plane = sim.attach_batch_plane(BatchPlane())
        full = FullBitPlane()
        for module in modules:
            module.full_bits = full
        kind = BankServeKind(sim, full)
        for module in modules:
            plane.register(module.server._complete, kind)
    ops = (Op.LOAD, Op.WRITEF, Op.READF, Op.FAA)
    done = [0]

    def chain(i, k):
        if k >= rounds:
            done[0] += 1
            return
        request = MemRequest(ops[k % 4], i, value=k)
        modules[i].submit(request, lambda _resp, i=i, k=k: chain(i, k + 1))

    for i in range(banks):
        chain(i, 0)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert done[0] == banks, f"expected {banks} chains done, got {done[0]}"
    return sim.events_fired, elapsed, sim.kernel_stats()


BATCH_SCENARIOS = [
    ("token_match", batch_token_match),
    ("bank_service", batch_bank_service),
]


def run_batch_bench(repeat):
    """Batch-vs-event throughput on the gate scenarios + an e10-style
    TTDA matmul timed under both modes (recorded, not gated)."""
    from repro.machines import registry

    scenarios = {}
    speedups = []
    for name, fn in BATCH_SCENARIOS:
        row = {}
        stats = None
        for mode in ("event", "batch"):
            best = 0.0
            fired = 0
            for _ in range(repeat):
                fired, elapsed, kernel_stats = fn(mode)
                rate = fired / elapsed if elapsed > 0 else 0.0
                best = max(best, rate)
                if mode == "batch":
                    stats = kernel_stats
            row[f"{mode}_events_per_sec"] = round(best)
            row["events_fired"] = fired
        event = row["event_events_per_sec"]
        row["speedup"] = (
            round(row["batch_events_per_sec"] / event, 2) if event else 0.0
        )
        row["batch_kernel_stats"] = {
            key: stats.get(key) for key in
            ("batched_ops", "batch_flushes", "max_batch_width")
        }
        speedups.append(row["speedup"])
        scenarios[name] = row

    spec = {"machine": "ttda", "config": dict(BATCH_E10_CONFIG),
            "workload": dict(BATCH_E10_WORKLOAD)}
    timings = {}
    for mode in ("event", "batch"):
        run_spec = dict(spec)
        run_spec["config"] = dict(spec["config"], exec_mode=mode)
        best = None
        for _ in range(repeat):
            t0 = time.perf_counter()
            registry.run_spec(run_spec)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        timings[f"{mode}_wall_seconds"] = round(best, 3)
    event_wall = timings["event_wall_seconds"]
    batch_wall = timings["batch_wall_seconds"]

    achieved = math.exp(
        sum(math.log(s) for s in speedups) / len(speedups)
    ) if all(s > 0 for s in speedups) else 0.0
    section = {
        "scenarios": scenarios,
        "e10_ttda_matmul": dict(
            timings,
            config=dict(BATCH_E10_CONFIG),
            workload=dict(BATCH_E10_WORKLOAD),
            speedup=round(event_wall / batch_wall, 2) if batch_wall else 0.0,
        ),
        "gate": {
            "target": BATCH_GATE_TARGET,
            "achieved": round(achieved, 2),
            "met": achieved >= BATCH_GATE_TARGET,
        },
    }
    if not section["gate"]["met"]:
        # The honest story, recorded next to the number (PERFORMANCE.md
        # has the full analysis): byte-identical replay means the batch
        # kernels only lift the *compute* out of each handler, and the
        # per-event control machinery they must replay dominates.
        section["gate"]["note"] = (
            "batch mode trades throughput for byte-identical replay; the "
            "un-vectorizable per-event machinery bounds it near parity "
            "on real components (see docs/PERFORMANCE.md)"
        )
    return section


#: The analytic-surrogate answer-latency gate (seconds per query): the
#: whole point of ``repro predict`` is answering in microseconds what a
#: simulation answers in seconds, so a warm query must stay under 1 ms.
PREDICT_GATE_SECONDS = 1e-3


def run_predict_bench(repeat, queries=2000):
    """Warm-query latency of the analytic surrogate (repro.predict).

    Loads the committed ttda fit once, then times ``queries`` repeated
    in-region queries; reports best-of-``repeat`` mean seconds/query and
    the <1ms gate.  The simulated time of the same config (from the e10
    grid: seconds of wall clock per run) is what the surrogate avoids.
    """
    from repro.predict import PredictPlane

    plane = PredictPlane()
    config = {"workload": "matmul", "n_pes": 8, "network_latency": 20}
    predictor = plane.predictor("ttda")
    predictor.query(config)  # warm: artifact load + first import
    best = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        for _ in range(queries):
            predictor.query(config)
        per_query = (time.perf_counter() - t0) / queries
        best = per_query if best is None else min(best, per_query)
    return {
        "machine": "ttda",
        "config": config,
        "queries": queries,
        "seconds_per_query": round(best, 9),
        "queries_per_sec": round(1.0 / best) if best else 0,
        "gate": {
            "target_seconds": PREDICT_GATE_SECONDS,
            "achieved_seconds": round(best, 9),
            "met": best < PREDICT_GATE_SECONDS,
        },
    }


def _time_scenario(fn, sim_class, n_events, repeat):
    """Best-of-``repeat`` events/sec (best-of defeats scheduler noise)."""
    best = 0.0
    fired = 0
    for _ in range(repeat):
        t0 = time.perf_counter()
        fired = fn(sim_class, n_events)
        elapsed = time.perf_counter() - t0
        best = max(best, fired / elapsed if elapsed > 0 else 0.0)
    return best, fired


def run_kernel_bench(n_events, repeat, kernels):
    results = {}
    for name, fn in SCENARIOS:
        row = {}
        for kernel_name, sim_class in kernels:
            rate, fired = _time_scenario(fn, sim_class, n_events, repeat)
            row[f"{kernel_name}_events_per_sec"] = round(rate)
            row["events_fired"] = fired
        if "calendar_events_per_sec" in row and "legacy_events_per_sec" in row:
            legacy = row["legacy_events_per_sec"]
            row["speedup"] = (
                round(row["calendar_events_per_sec"] / legacy, 2) if legacy else 0.0
            )
        results[name] = row
    return results


def run_experiment_timings():
    """Wall-clock (seconds) for the gated experiments, one subprocess
    each, cache disabled so the measured work is the real simulation."""
    timings = {}
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    for exp in GATED_EXPERIMENTS:
        t0 = time.perf_counter()
        subprocess.run(
            [sys.executable, "-m", "repro", "bench", "--only", exp,
             "--jobs", "0", "--no-cache"],
            cwd=REPO_ROOT, env=env, check=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        timings[exp] = {"wall_seconds": round(time.perf_counter() - t0, 3)}
    return timings


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200_000,
                        help="events per scenario (default 200000)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per scenario; best-of is kept")
    parser.add_argument("--legacy", action="store_true",
                        help="benchmark only the legacy heapq kernel")
    parser.add_argument("--experiments", action="store_true",
                        help="also time the gated experiments (e10, e19)")
    parser.add_argument("--skip-psim", action="store_true",
                        help="skip the parallel-kernel (psim) section")
    parser.add_argument("--skip-batch", action="store_true",
                        help="skip the batch execution mode section")
    parser.add_argument("--skip-predict", action="store_true",
                        help="skip the analytic-surrogate latency section")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path (default: repo BENCH_perf.json)")
    parser.add_argument("--no-write", action="store_true",
                        help="print results without writing the JSON file")
    args = parser.parse_args(argv)

    if args.legacy:
        kernels = [("legacy", LegacySimulator)]
    else:
        kernels = [("calendar", CalendarSimulator), ("legacy", LegacySimulator)]

    scenarios = run_kernel_bench(args.events, args.repeat, kernels)

    width = max(len(name) for name in scenarios)
    header = f"{'scenario':<{width}}  {'calendar ev/s':>14}  {'legacy ev/s':>12}  {'speedup':>8}"
    print(header)
    print("-" * len(header))
    speedups = []
    for name, row in scenarios.items():
        cal = row.get("calendar_events_per_sec")
        leg = row.get("legacy_events_per_sec")
        speed = row.get("speedup")
        if speed:
            speedups.append(speed)
        print(f"{name:<{width}}  {cal if cal else '-':>14}  "
              f"{leg if leg else '-':>12}  "
              f"{f'{speed:.2f}x' if speed else '-':>8}")
    from repro.common.batch import resolve_exec_mode

    payload = {
        "meta": {
            "host_cpus": os.cpu_count() or 1,
            "kernel": ("legacy" if args.legacy
                       else os.environ.get("REPRO_SIM_KERNEL")
                       or "calendar"),
            "exec_mode": resolve_exec_mode(),
            "shards": PSIM_E10_SHARDS if not args.skip_psim else 1,
            "python": sys.version.split()[0],
        },
        "kernel": {
            "events_per_scenario": args.events,
            "repeat": args.repeat,
            "scenarios": scenarios,
        },
    }
    if speedups:
        geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        payload["kernel"]["geomean_speedup"] = round(geomean, 2)
        print(f"\ngeomean speedup: {geomean:.2f}x")

    if not args.skip_psim and not args.legacy:
        print("\nbenchmarking the sharded parallel kernel (psim)...")
        psim = run_psim_bench(args.events, args.repeat)
        payload["psim"] = psim
        ring = psim["ring"]
        for label in ("serial", "sequenced", "window", "thread"):
            print(f"  ring {label:>9}: "
                  f"{ring[f'{label}_events_per_sec']:>8} ev/s")
        e10 = psim["e10_ttda_matmul"]
        print(f"  e10 ttda matmul: serial {e10['serial_wall_seconds']:.3f}s, "
              f"sequenced x{e10['sequenced_speedup']:.2f}, "
              f"thread x{e10['thread_speedup']:.2f} "
              f"(shards={e10['shards']}, host_cpus={psim['host_cpus']})")

    if not args.skip_batch and not args.legacy:
        print("\nbenchmarking batch execution mode (exec_mode=batch)...")
        batch = run_batch_bench(args.repeat)
        payload["batch"] = batch
        for name, row in batch["scenarios"].items():
            stats = row["batch_kernel_stats"]
            print(f"  {name:>12}: event {row['event_events_per_sec']:>8} ev/s, "
                  f"batch {row['batch_events_per_sec']:>8} ev/s, "
                  f"x{row['speedup']:.2f} "
                  f"(ops={stats['batched_ops']}, "
                  f"max_width={stats['max_batch_width']})")
        e10 = batch["e10_ttda_matmul"]
        print(f"  e10 ttda matmul: event {e10['event_wall_seconds']:.3f}s, "
              f"batch {e10['batch_wall_seconds']:.3f}s, x{e10['speedup']:.2f}")
        gate = batch["gate"]
        verdict = "met" if gate["met"] else "NOT met"
        print(f"  gate: {gate['achieved']:.2f}x achieved vs "
              f"{gate['target']:.1f}x target ({verdict})")

    if not args.skip_predict:
        print("\nbenchmarking the analytic surrogate (repro predict)...")
        predict = run_predict_bench(args.repeat)
        payload["predict"] = predict
        gate = predict["gate"]
        verdict = "met" if gate["met"] else "NOT met"
        print(f"  warm query: {predict['seconds_per_query'] * 1e6:.1f} us "
              f"({predict['queries_per_sec']} queries/s); gate "
              f"<{gate['target_seconds'] * 1e3:.0f}ms {verdict}")

    if args.experiments:
        print("\ntiming gated experiments (subprocess, cache off)...")
        payload["experiments"] = run_experiment_timings()
        for exp, row in payload["experiments"].items():
            print(f"  {exp}: {row['wall_seconds']:.3f}s")

    if not args.no_write:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\n-> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
