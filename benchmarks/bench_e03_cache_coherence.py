"""E3 — the cache coherence problem (§1.1).

"What is logically required is a mechanism which, upon the occurrence of a
write to location x, invalidates all other cached copies of location x
wherever they may occur ... This can incur significant overhead and
complexity.  Several approximate solutions ... inevitably introduce
overhead and/or decrease parallelism."

Two measurements on the snoopy-bus machine:

* **private-data scaling** — caches work beautifully when processors do
  not share: near-linear speedup, bus stays cool;
* **shared-data scaling** — processors updating a shared line turn every
  write into an invalidation broadcast; the single serializing bus
  saturates and speedup stops.
"""

from repro.analysis import Table
from repro.vonneumann import CacheConfig, VNMachine, programs


def _private_kernel(pid, passes, words=8):
    """Repeated passes over a small private array: after the cold misses,
    every reference hits the processor's own cache."""
    base = 1000 + pid * 64  # one line group per processor
    return f"""
    movi r9, {passes}
outer:
    beqz r9, done
    movi r3, {words}
    movi r4, {base}
    movi r5, 0
loop:
    beqz r3, next
    load r6, r4, 0
    add  r5, r5, r6
    addi r4, r4, 1
    subi r3, r3, 1
    jmp  loop
next:
    subi r9, r9, 1
    jmp  outer
done:
    halt
"""


def run_scaling(proc_counts, sharing, iterations=24,
                write_policy="write_back"):
    rows = []
    base_time = None
    for n_procs in proc_counts:
        machine = VNMachine(n_procs, memory="bus",
                            cache_config=CacheConfig(line_words=4),
                            memory_time=10, bus_time=2,
                            write_policy=write_policy)
        for pid in range(n_procs):
            if sharing:
                source = programs.shared_counter_spinlock(0, 1, iterations)
            else:
                source = _private_kernel(pid, iterations)
            machine.add_processor(source, regs={1: pid})
        result = machine.run()
        if base_time is None:
            base_time = result.time
        rows.append(
            {
                "n": n_procs,
                "time": result.time,
                "throughput": n_procs * base_time / result.time,
                "invalidations": machine.memory.counters["invalidations"],
                "bus_util": machine.memory.bus_utilization(),
            }
        )
    return rows


def run_experiment(proc_counts=(1, 2, 4, 8, 16)):
    table = Table(
        "E3  Cache coherence overhead under scaling (paper §1.1)",
        ["procs", "pattern", "time", "relative throughput", "invalidations",
         "bus utilization"],
        notes=[
            "relative throughput = n * t(1) / t(n); linear scaling keeps it ~n",
            "private pattern: disjoint lines; shared: one lock + one counter",
        ],
    )
    for row in run_scaling(proc_counts, sharing=False):
        table.add_row(row["n"], "private", row["time"], row["throughput"],
                      row["invalidations"], row["bus_util"])
    for row in run_scaling(proc_counts, sharing=True):
        table.add_row(row["n"], "shared", row["time"], row["throughput"],
                      row["invalidations"], row["bus_util"])
    return table


def write_policy_table(n_procs=4, iterations=24):
    """"Store-through ... does not completely solve the problem either"
    (§1.1): every store becomes a bus transaction, and invalidations are
    still required."""
    table = Table(
        "E3b  Write-back vs write-through under a store-heavy kernel "
        "(paper §1.1)",
        ["policy", "time", "store bus transactions", "invalidations",
         "bus utilization"],
        notes=[f"{n_procs} processors, each storing {iterations}x into its "
               "own word of one shared line region"],
    )
    for policy in ("write_back", "write_through"):
        machine = VNMachine(n_procs, memory="bus",
                            cache_config=CacheConfig(line_words=4),
                            memory_time=10, bus_time=2, write_policy=policy)
        for pid in range(n_procs):
            machine.add_processor(f"""
                movi r2, {pid}
                movi r3, {iterations}
            loop:
                beqz r3, done
                store r3, r2, 0
                subi r3, r3, 1
                jmp loop
            done:
                halt
            """, regs={1: pid})
        result = machine.run()
        counters = machine.memory.counters
        store_traffic = (
            counters.get("bus_write_through")
            + counters.get("bus_write_miss")
            + counters.get("bus_upgrade")
        )
        table.add_row(policy, result.time, store_traffic,
                      counters.get("invalidations"),
                      machine.memory.bus_utilization())
    return table


def test_e03_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=((1, 2, 4, 8),),
                               rounds=1, iterations=1)
    private = table.rows[:4]
    shared = table.rows[4:]
    private_tp = [float(r[3]) for r in private]
    shared_tp = [float(r[3]) for r in shared]
    private_inv = [int(r[4]) for r in private]
    shared_inv = [int(r[4]) for r in shared]
    # Private data scales; shared data does not.
    assert private_tp[-1] > 5.0  # near-linear at 8 procs
    assert shared_tp[-1] < private_tp[-1] / 2
    # Sharing generates invalidation storms; private data nearly none.
    assert shared_inv[-1] > 20 * max(1, private_inv[-1])
    # The shared bus ends up saturated.
    shared_bus = [float(r[5]) for r in shared]
    assert shared_bus[-1] > 0.8


def test_e03b_write_through(benchmark):
    table = benchmark.pedantic(write_policy_table, rounds=1, iterations=1)
    wb, wt = table.rows
    # Store-through makes *every* store a bus transaction (96 = 4 procs x
    # 24 stores); write-back pays only for the false-sharing ping-pong.
    assert int(wt[2]) == 96
    assert int(wt[2]) > 3 * int(wb[2])
    # And it still needs the invalidation mechanism the paper requires.
    assert int(wt[3]) >= int(wb[3])
    assert float(wt[1]) > float(wb[1])  # and it is slower here


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e03_cache_coherence")
    write_table(write_policy_table(), "e03b_write_policy")
