"""E18 (extension) — the experiment the paper asks for (§1.2.2).

"Kmap, the communications controller, was actually a context-switching
processor which could tolerate the long-latency remote memory references.
Unfortunately, the processors (LSI-11s) could not perform similar
low-level context switches during a remote reference.  *It would be
interesting to speculate on the behavior of Cm\\* if micro-tasking
processors had been used.*"

We run that speculation: the Cm* locality sweep with HEP-style
multithreaded computer modules (K contexts per processor).  Micro-tasking
recovers most of the utilization lost to remote references — but only by
multiplying contexts, which is exactly the unbounded-context treadmill of
Issue 1 (see E9); and the recovered throughput then saturates the shared
Kmaps/intercluster bus instead.
"""

from repro.analysis import Table
from repro.machines import registry

FRACTIONS = [0.0, 0.1, 0.2, 0.35, 0.5]
CONTEXTS = [1, 2, 4, 8]


def run_experiment(fractions=FRACTIONS, context_counts=CONTEXTS,
                   n_clusters=2, cluster_size=2, n_refs=40):
    table = Table(
        "E18  Cm* with micro-tasking processors (the §1.2.2 speculation)",
        ["remote fraction"] + [f"util K={k}" for k in context_counts],
        notes=[
            f"{n_clusters} clusters x {cluster_size} modules, "
            "inter-cluster victims",
            "K = hardware contexts per computer module (K=1 is the real Cm*)",
        ],
    )
    model = registry.create("cmstar", n_clusters=n_clusters,
                            cluster_size=cluster_size)
    columns = []
    for k in context_counts:
        columns.append([
            model.run(remote_fraction=fraction, n_refs=n_refs,
                      remote_kind="intercluster",
                      contexts=k).metric("utilization")
            for fraction in fractions
        ])
    for i, fraction in enumerate(fractions):
        table.add_row(fraction, *[col[i] for col in columns])
    return table


def test_e18_shape(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=([0.0, 0.1, 0.5], [1, 4]), rounds=1,
        iterations=1,
    )
    k1 = [float(x) for x in table.column("util K=1")]
    k4 = [float(x) for x in table.column("util K=4")]
    # Micro-tasking recovers utilization while latency is the problem...
    assert k4[0] > 1.5 * k1[0]
    assert k4[1] > 1.5 * k1[1]
    # ...but once remote traffic saturates the shared Kmaps/intercluster
    # bus, extra contexts buy nothing: the bottleneck has moved.
    assert k4[2] < 1.2 * k1[2]
    assert k4[2] < k4[0]


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e18_cmstar_microtasking")
