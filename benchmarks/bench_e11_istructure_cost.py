"""E11 — the cost model of I-structure storage (§2.1).

"The penalty of such a scheme in terms of the demands placed on memory
elements is not excessive.  A read operation is as efficient as in a
traditional memory.  Write operations take twice as long, however, due to
the prefetching of presence bits."

Microbenchmarks against one timed I-structure controller:

* service cost of pure-read and pure-write streams (read 1x, write 2x);
* deferred-read-list behaviour under an adversarial pattern (every read
  issued before its write) — list lengths, and the one-shot drain cost.
"""

from repro.analysis import Table
from repro.common import Simulator
from repro.istructure import IStructureController, ReadRequest, WriteRequest


def _controller(sim, replies):
    return IStructureController(
        sim, deliver=lambda reply, value: replies.append((reply, value)),
        read_cycles=1, write_cycles=2,
    )


def stream_cost(kind, n=200):
    sim = Simulator()
    replies = []
    controller = _controller(sim, replies)
    if kind == "write":
        for i in range(n):
            controller.submit(WriteRequest(key=("a", i), value=i))
    else:
        for i in range(n):
            controller.submit(WriteRequest(key=("a", i), value=i))
        sim.run()
        start = sim.now
        for i in range(n):
            controller.submit(ReadRequest(key=("a", i), reply=i))
        sim.run()
        return (sim.now - start) / n
    sim.run()
    return sim.now / n


def adversarial_deferral(n=64, readers_per_cell=3):
    """Every read arrives before its write: maximal deferred lists."""
    sim = Simulator()
    replies = []
    controller = _controller(sim, replies)
    for i in range(n):
        for r in range(readers_per_cell):
            controller.submit(ReadRequest(key=("a", i), reply=(i, r)))
    for i in range(n):
        controller.submit(WriteRequest(key=("a", i), value=i * i))
    sim.run()
    histogram = controller.module.deferred_list_lengths
    return {
        "replies": len(replies),
        "deferred": controller.module.counters["reads_deferred"],
        "immediate": controller.module.counters["reads_immediate"],
        "mean_list": histogram.mean,
        "max_list": histogram.max,
        "every_reader_answered": sorted(r for r, _ in replies)
        == sorted((i, r) for i in range(n) for r in range(readers_per_cell)),
    }


def run_experiment():
    table = Table(
        "E11  I-structure storage cost model (paper §2.1)",
        ["measurement", "value"],
        notes=[
            "cycles/op from 200-request streams on one controller",
            "adversarial pattern: 3 reads of every cell arrive before its write",
        ],
    )
    read_cost = stream_cost("read")
    write_cost = stream_cost("write")
    table.add_row("read cycles/op (paper: 1x plain memory)", read_cost)
    table.add_row("write cycles/op (paper: 2x, presence-bit prefetch)",
                  write_cost)
    table.add_row("write/read cost ratio", write_cost / read_cost)
    stats = adversarial_deferral()
    table.add_row("adversarial: deferred reads", stats["deferred"])
    table.add_row("adversarial: immediate reads", stats["immediate"])
    table.add_row("adversarial: mean deferred-list length", stats["mean_list"])
    table.add_row("adversarial: max deferred-list length", stats["max_list"])
    table.add_row("adversarial: every reader answered",
                  stats["every_reader_answered"])
    return table


def test_e11_shape(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    values = dict(zip([r[0] for r in table.rows],
                      [r[1] for r in table.rows]))
    assert float(values["read cycles/op (paper: 1x plain memory)"]) == 1.0
    assert float(values["write/read cost ratio"]) == 2.0
    assert values["adversarial: every reader answered"] == "yes"
    assert float(values["adversarial: max deferred-list length"]) == 3.0
    assert int(values["adversarial: immediate reads"]) == 0


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e11_istructure_cost")
