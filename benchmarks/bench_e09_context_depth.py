"""E9 — low-level context switching needs unboundedly many contexts (§1.1).

"In the multiprocessor case, it will be necessary to have an unbounded
number of tasks to achieve scalability. ... As memory elements are added,
the depth of the communication network will grow.  Hence, the number of
low-level contexts to be maintained will also have to increase to match
the increase in memory latency time."

A HEP-style multithreaded processor runs K contexts of the same kernel
against a sweep of memory latencies.  For every latency there is a K that
saturates the pipeline — but that K grows linearly with the latency, so
no *fixed*-context processor survives scaling.
"""

from repro.analysis import Table, contexts_needed
from repro.vonneumann import VNMachine, programs

LATENCIES = [2, 5, 10, 20, 40]
CONTEXTS = [1, 2, 4, 8, 16, 32]


def run_point(n_contexts, latency, iterations=12):
    machine = VNMachine(1, memory="dancehall", latency=latency, memory_time=1)
    source = programs.compute_loop(iterations, loads_per_iter=1,
                                   alu_ops_per_iter=1)
    machine.add_multithreaded_processor(
        [(source, {}) for _ in range(n_contexts)]
    )
    machine.run()
    return machine.processors[0].utilization()


def run_experiment(latencies=LATENCIES, context_counts=CONTEXTS,
                   target=0.9):
    table = Table(
        "E9  Hardware contexts needed to cover memory latency "
        "(paper §1.1, Issue 1)",
        ["latency"] + [f"K={k}" for k in context_counts]
        + ["K needed (measured)", "K needed (model)"],
        notes=[
            f"cell = pipeline utilization; 'needed' = smallest K with "
            f"utilization >= {target}",
            "kernel: 1 load + ~4 other cycles per iteration",
        ],
    )
    for latency in latencies:
        utils = [run_point(k, latency) for k in context_counts]
        measured = next(
            (k for k, u in zip(context_counts, utils) if u >= target), None
        )
        model = contexts_needed(5, 2 * latency + 1, target)
        table.add_row(latency, *utils,
                      measured if measured is not None else f">{context_counts[-1]}",
                      model)
    return table


def test_e09_shape(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=([2, 10, 40], [1, 4, 16, 32]), rounds=1,
        iterations=1,
    )
    # Utilization grows with K at fixed latency.
    for row in table.rows:
        utils = [float(x) for x in row[1:5]]
        assert utils == sorted(utils)
    # The K needed to stay saturated grows with latency: the K that covers
    # latency 2 no longer covers latency 40.
    k1_util_low_latency = float(table.rows[0][1])
    k1_util_high_latency = float(table.rows[2][1])
    assert k1_util_low_latency > 3 * k1_util_high_latency
    k32_high = float(table.rows[2][4])
    assert k32_high > 0.8  # enough contexts always recovers utilization


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e09_context_depth")
