"""E2 — Issue 2: sharing data without constraining parallelism (§1.1).

The paper's producer/consumer example: "One possible way of avoiding a
read-before-write race would be to allow the *entire* array to be written
prior to allowing the consumer routine to begin processing.  By this
simpleminded transfer of control, there is no synchronization problem,
but neither is there any chance for parallelism. ... The extreme approach
would be to synchronize the two routines on a per-element basis", which
§2.3 claims I-structures deliver "with no performance overhead and with no
loss of parallelism".

Three disciplines, one pipeline workload:

* **whole-array** — von Neumann, consumer spins on a done flag;
* **per-element busy-wait** — von Neumann with HEP full/empty bits
  (footnote 2): overlap, but paid for in retry traffic;
* **per-element I-structure** — the tagged-token machine: overlap with
  deferred reads instead of retries.

The comparable metric is the *overlap factor*: total time divided by the
sum of producer-alone and consumer-alone times on the same machine
(1.0 = fully serialized, 0.5 = perfectly overlapped).
"""

from repro.analysis import Table
from repro.dataflow import MachineConfig, TaggedTokenMachine
from repro.vonneumann import VNMachine, programs
from repro.workloads import compile_workload


def _vn_machine(retry_backoff=4):
    return VNMachine(2, memory="dancehall", latency=2, memory_time=1,
                     retry_backoff=retry_backoff)


def run_whole_array(n, work=6):
    producer = programs.producer_whole_array(100, n, 50, work_per_element=work)
    consumer = programs.consumer_whole_array(100, n, 50, 99,
                                             work_per_element=work)
    machine = _vn_machine()
    machine.add_processor(producer)
    machine.add_processor(consumer)
    result = machine.run()
    both = result.time
    retries = result.counters["retries"]  # the consumer spinning on the flag

    solo_p = _vn_machine()
    solo_p.add_processor(producer)
    t_p = solo_p.run().time
    solo_c = _vn_machine()
    for k in range(n):
        solo_c.poke(100 + k, k * k)
    solo_c.poke(50, 1, full=True)
    solo_c.add_processor(consumer)
    t_c = solo_c.run().time
    return both, both / (t_p + t_c), retries


def run_per_element(n, work=6):
    producer = programs.producer_per_element(100, n, work_per_element=work)
    consumer = programs.consumer_per_element(100, n, 99, work_per_element=work)
    machine = _vn_machine()
    machine.add_processor(producer)
    machine.add_processor(consumer)
    result = machine.run()
    both = result.time
    retries = result.counters["retries"]

    solo_p = _vn_machine()
    solo_p.add_processor(producer)
    t_p = solo_p.run().time
    solo_c = _vn_machine()
    for k in range(n):
        solo_c.poke(100 + k, k * k, full=True)
    solo_c.add_processor(consumer)
    t_c = solo_c.run().time
    return both, both / (t_p + t_c), retries


def run_istructure(n):
    program, _, _ = compile_workload("pipeline")
    config = MachineConfig(n_pes=4, network_latency=2)
    both = TaggedTokenMachine(program, config).run(n).time

    produce_only, _, _ = _compile_single("produce")
    consume_only, _, _ = _compile_single("consume_prefilled")
    t_p = TaggedTokenMachine(produce_only, config).run(n).time
    t_c = TaggedTokenMachine(consume_only, config).run(n).time
    return both, both / (t_p + t_c), 0


def _compile_single(which):
    from repro.lang import compile_source

    if which == "produce":
        source = """
        def produce(a, n) =
          (initial k <- 0
           while k < n do
             a[k] <- k * k;
             new k <- k + 1
           return k);
        def main(n) = let a = array(n) in produce(a, n);
        """
    else:
        source = """
        def fill(a, n) =
          (initial k <- 0
           while k < n do
             a[k] <- k * k;
             new k <- k + 1
           return k);
        def consume(a, n) =
          (initial k <- 0; s <- 0
           while k < n do
             new s <- s + a[k];
             new k <- k + 1
           return s);
        def main(n) =
          let a = array(n) in
          let t = fill(a, n) in
          consume(a, n);
        """
    return compile_source(source, entry="main"), None, None


def run_experiment(n=24):
    table = Table(
        "E2  Synchronization granularity on a producer/consumer array "
        "(paper §1.1 Issue 2, §2.3)",
        ["discipline", "machine", "time", "overlap factor", "retry traffic"],
        notes=[
            "overlap factor = time(both) / (time(producer) + time(consumer))",
            "1.0 = serialized; 0.5 = perfect overlap",
            f"array of {n} elements",
        ],
    )
    t, overlap, retries = run_whole_array(n)
    table.add_row("whole-array flag", "von Neumann", t, overlap, retries)
    t, overlap, retries = run_per_element(n)
    table.add_row("per-element full/empty (HEP)", "von Neumann", t, overlap,
                  retries)
    t, overlap, retries = run_istructure(n)
    table.add_row("per-element I-structure", "tagged-token", t, overlap,
                  retries)
    return table


def test_e02_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=(16,), rounds=1,
                               iterations=1)
    overlaps = [float(x) for x in table.column("overlap factor")]
    retries = [int(x) for x in table.column("retry traffic")]
    whole, hep, istruct = overlaps
    # Whole-array barrier serializes; both per-element schemes overlap.
    assert whole > 0.9
    assert hep < 0.85
    assert istruct < 0.85
    # Busy-waiting pays in retry traffic; I-structures never retry.
    assert retries[0] > 0  # the whole-array consumer spins on the flag
    assert retries[1] > 0
    assert retries[2] == 0


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e02_sync_granularity")
