"""E17 (extension) — ablating the unbounded associative store (§2.2.3).

The paper's waiting-matching section is an associative memory where
unmatched tokens wait indefinitely.  Real associative memories are small;
when exposed parallelism exceeds capacity, tokens spill to a slower
overflow store.  This ablation sweeps the per-PE capacity and shows the
cliff: performance is flat while the store holds the working set of
unmatched tokens, then degrades as probes start paying the overflow
penalty — quantifying how much associative memory the paper's machine
actually needs for a given workload.
"""

from repro.analysis import Table
from repro.dataflow import MachineConfig, TaggedTokenMachine
from repro.workloads import compile_workload

CAPACITIES = [None, 128, 64, 32, 16, 8, 4]


def run_point(capacity, n=5, n_pes=4, penalty=16.0):
    program, reference, _ = compile_workload("matmul")
    config = MachineConfig(n_pes=n_pes, wm_capacity=capacity,
                           wm_overflow_penalty=penalty)
    machine = TaggedTokenMachine(program, config)
    result = machine.run(n)
    assert result.value == reference(n)
    return result, machine


def run_experiment(capacities=CAPACITIES, n=5, n_pes=4):
    table = Table(
        "E17  Finite waiting-matching store: capacity ablation "
        "(paper §2.2.3)",
        ["capacity/PE", "time", "slowdown", "overflow probes",
         "peak waiting (one PE)"],
        notes=[
            "overflow probe = a match attempt while the store is over "
            "capacity (pays the spill penalty)",
            f"matmul n={n} on {n_pes} PEs; penalty 16 cycles",
        ],
    )
    base_time = None
    for capacity in capacities:
        result, machine = run_point(capacity, n=n, n_pes=n_pes)
        if base_time is None:
            base_time = result.time
        _, peak = machine.matching_store_occupancy()
        table.add_row(
            "unbounded" if capacity is None else capacity,
            result.time, result.time / base_time,
            result.counters.get("wm_overflows", 0), peak,
        )
    return table


def test_e17_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=([None, 64, 8],),
                               kwargs={"n": 4}, rounds=1, iterations=1)
    slowdowns = [float(x) for x in table.column("slowdown")]
    overflows = [int(x) for x in table.column("overflow probes")]
    assert slowdowns[0] == 1.0
    assert overflows[0] == 0
    # A capacity above the working set is free; a tiny store is not.
    assert slowdowns[-1] > slowdowns[1]
    assert slowdowns[-1] > 1.15
    assert overflows[-1] > overflows[1]


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e17_wm_capacity")
