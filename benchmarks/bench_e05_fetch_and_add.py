"""E5 — the NYU Ultracomputer's combining FETCH-AND-ADD (§1.2.3).

"If two packets collide ... the switch extracts the values x and y, forms
a new packet ... Hence, one memory reference may involve as many as
log2(n) additions, and implies substantial hardware complexity."

The hot-spot experiment: every processor FETCH-AND-ADDs one shared cell
simultaneously.  Without combining the hot memory port serializes all n
requests; with combining the switches fold them into a tree, at the price
of combine/split work in the network (the "substantial hardware
complexity" — we count it).

Ported to the sweep engine: every (size, combining) point is one pure
run, so ``repro bench`` executes the grid across workers and caches it.
"""

from repro.analysis import Table
from repro.exp import Experiment
from repro.machines import registry

STAGES = [2, 3, 4, 5, 6]


def run_point(config):
    """One hot-spot run; returns the table cells for this grid point."""
    result = registry.create("ultracomputer", stages=config["stages"],
                             combining=config["combining"]).run()
    # serializability: the FETCH-AND-ADD sum must survive combining
    assert result.metric("final_value") == result.metric("n_procs")
    return [
        result.metric("n_procs"),
        config["combining"],
        result.metric("memory_arrivals"),
        result.metric("max_round_trip"),
        result.metric("total_time"),
        result.metric("combines"),
    ]


def _grid(stage_counts):
    return [{"stages": stages, "combining": combining}
            for stages in stage_counts
            for combining in (False, True)]


def _assemble(experiment, values):
    table = Table(
        "E5  FETCH-AND-ADD hot spot: combining vs non-combining omega "
        "network (paper §1.2.3)",
        ["n procs", "combining", "hot-port arrivals", "max round trip",
         "total time", "switch combines"],
        notes=[
            "every processor FETCH-AND-ADDs address 0 at t=0",
            "hot-port arrivals / n = serialization factor (1.0 = no combining)",
            "correctness (sum preserved, distinct old values) asserted per run",
        ],
    )
    for row in values:
        table.add_row(*row)
    return table


def build_sweep(stage_counts=STAGES):
    return Experiment(
        name="e05_fetch_and_add",
        run=run_point,
        grid=_grid(stage_counts),
        assemble=_assemble,
    )


SWEEPS = {"e05_fetch_and_add": build_sweep()}


def run_experiment(stage_counts=STAGES):
    experiment = build_sweep(stage_counts)
    return experiment.table(experiment.run_inline())


def test_e05_shape(benchmark):
    table = benchmark.pedantic(run_experiment, args=([3, 5],), rounds=1,
                               iterations=1)
    # Rows alternate (no combining, combining) per size.
    n8_plain, n8_comb, n32_plain, n32_comb = table.rows
    assert int(n8_plain[2]) == 8 and int(n32_plain[2]) == 32
    assert int(n8_comb[2]) < 8 and int(n32_comb[2]) < 8  # tree collapse
    # Latency growth from n=8 to n=32: ~4x without combining, far less with.
    growth_plain = float(n32_plain[3]) / float(n8_plain[3])
    growth_comb = float(n32_comb[3]) / float(n8_comb[3])
    assert growth_plain > 2.5
    assert growth_comb < growth_plain / 1.5
    # Combining did real switch work.
    assert int(n32_comb[5]) > 0


if __name__ == "__main__":
    from harness import write_table

    write_table(run_experiment(), "e05_fetch_and_add")
